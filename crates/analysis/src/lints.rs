//! The lint catalogue: eight repo-specific rules, L1–L8.
//!
//! Each lint works on the lexed token streams in a [`Workspace`];
//! none of them parses Rust properly, and each one documents the
//! approximation it makes. False positives are expected to be rare and
//! are handled by the committed baseline, never by weakening a rule.

use crate::lexer::{TokKind, Token};
use crate::workspace::{FileKind, SourceFile, Workspace};
use crate::Finding;
use std::collections::{BTreeMap, HashSet};

/// Renders one line's tokens back into a compact, format-insensitive
/// snippet for diagnostics and baseline keys.
fn render(tokens: &[&Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        match t.kind {
            TokKind::Str => {
                s.push('"');
                s.push_str(&t.text);
                s.push('"');
            }
            TokKind::Char => {
                s.push('\'');
                s.push_str(&t.text);
                s.push('\'');
            }
            TokKind::Lifetime => {
                s.push('\'');
                s.push_str(&t.text);
            }
            _ => s.push_str(&t.text),
        }
    }
    s
}

/// Groups a file's tokens by source line, skipping test-only code.
fn live_lines(file: &SourceFile) -> BTreeMap<u32, Vec<&Token>> {
    let mut lines: BTreeMap<u32, Vec<&Token>> = BTreeMap::new();
    for t in &file.tokens {
        if !file.in_test_code(t.line) {
            lines.entry(t.line).or_default().push(t);
        }
    }
    lines
}

/// All identifier texts appearing in a file (used for "is this type
/// referenced from suite X" checks).
fn ident_set(file: Option<&SourceFile>) -> HashSet<&str> {
    file.map(|f| {
        f.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    })
    .unwrap_or_default()
}

/// A `impl Trait for Type` declaration recovered from tokens.
struct ImplDecl {
    trait_name: String,
    type_name: String,
    line: u32,
}

/// Scans a file for trait impls. Approximation: the trait is the last
/// angle-depth-0 identifier before `for`, the type is the first
/// identifier after it; inherent impls (no `for` before the body) are
/// skipped. `>>`-style token splits are harmless because the lexer
/// already emits one token per `>`.
fn impls_in(file: &SourceFile) -> Vec<ImplDecl> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") || file.in_test_code(toks[i].line) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        // Skip the generics block `impl<...>` if present.
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i64;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Collect up to `for` (trait impl) or `{` / `;` (inherent).
        let mut depth = 0i64;
        let mut last_ident: Option<&str> = None;
        let mut found: Option<(String, usize)> = None;
        while let Some(t) = toks.get(j) {
            if depth == 0 {
                if t.is_ident("for") {
                    if let Some(name) = last_ident {
                        found = Some((name.to_string(), j + 1));
                    }
                    break;
                }
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokKind::Ident {
                last_ident = Some(&t.text);
            }
            j += 1;
        }
        if let Some((trait_name, after_for)) = found {
            let mut k = after_for;
            while let Some(t) = toks.get(k) {
                if t.kind == TokKind::Ident {
                    out.push(ImplDecl {
                        trait_name,
                        type_name: t.text.clone(),
                        line,
                    });
                    break;
                }
                if t.is_punct('{') {
                    break;
                }
                k += 1;
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// L1 — field arithmetic must go through `hindex-hashing::field`.
///
/// Flags any library-code line (outside `crates/hashing/src/field.rs`)
/// that mentions `MERSENNE_P` together with raw `%`, `*`, or an `as`
/// cast: reductions, products, and narrowing conversions on field
/// elements belong to the checked helpers (`from_u64`, `from_i64`,
/// `mersenne_mul`, `mersenne_reduce`), which carry the canonicality
/// invariants. Line-based: an expression split across lines so that the
/// constant and the operator land on different lines is not caught.
pub struct FieldArithmetic;

impl crate::Lint for FieldArithmetic {
    fn id(&self) -> &'static str {
        "L1"
    }
    fn summary(&self) -> &'static str {
        "raw %/*/`as` arithmetic on MERSENNE_P outside hindex-hashing::field"
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Library || file.path == "crates/hashing/src/field.rs" {
                continue;
            }
            for (line, toks) in live_lines(file) {
                let mentions_p = toks.iter().any(|t| t.is_ident("MERSENNE_P"));
                let raw_op = toks
                    .iter()
                    .any(|t| t.is_punct('%') || t.is_punct('*') || t.is_ident("as"));
                if mentions_p && raw_op {
                    out.push(Finding::new(
                        "L1",
                        &file.path,
                        line,
                        &render(&toks),
                        "raw field arithmetic on MERSENNE_P outside hindex-hashing::field"
                            .to_string(),
                        Some(
                            "route through the checked helpers: from_u64 / from_i64 for \
                             canonicalisation, mersenne_mul / mersenne_reduce for products"
                                .to_string(),
                        ),
                    ));
                }
            }
        }
    }
}

/// L2 — every public estimator carries a space contract.
///
/// Any type implementing one of the estimator traits
/// (`AggregateEstimator`, `CashRegisterEstimator`,
/// `TurnstileEstimator`) in `crates/{core,sketch,baseline}` must also
/// implement `SpaceUsage`, and must be referenced from the workspace
/// space-contract suite `tests/space_contracts.rs` so the sublinearity
/// bounds of the paper stay pinned by tests.
pub struct SpaceContract;

/// The estimator traits whose implementors L2 audits.
const ESTIMATOR_TRAITS: &[&str] = &[
    "AggregateEstimator",
    "CashRegisterEstimator",
    "TurnstileEstimator",
];

/// Crates whose estimator types are subject to L2.
const ESTIMATOR_CRATES: &[&str] = &["crates/core/", "crates/sketch/", "crates/baseline/"];

impl crate::Lint for SpaceContract {
    fn id(&self) -> &'static str {
        "L2"
    }
    fn summary(&self) -> &'static str {
        "estimator types must impl SpaceUsage and appear in tests/space_contracts.rs"
    }
    fn cross_file(&self) -> bool {
        true
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let contract_refs = ident_set(ws.file("tests/space_contracts.rs"));
        let mut space_types: HashSet<String> = HashSet::new();
        for file in &ws.files {
            if file.kind == FileKind::Library {
                for imp in impls_in(file) {
                    if imp.trait_name == "SpaceUsage" {
                        space_types.insert(imp.type_name);
                    }
                }
            }
        }
        let mut reported: HashSet<(String, &str)> = HashSet::new();
        for file in &ws.files {
            if !ESTIMATOR_CRATES.iter().any(|c| file.path.starts_with(c)) {
                continue;
            }
            for imp in impls_in(file) {
                if !ESTIMATOR_TRAITS.contains(&imp.trait_name.as_str()) {
                    continue;
                }
                let ty = &imp.type_name;
                if !space_types.contains(ty) && reported.insert((ty.clone(), "space")) {
                    out.push(Finding::new(
                        "L2",
                        &file.path,
                        imp.line,
                        &format!("{ty} missing SpaceUsage"),
                        format!("estimator `{ty}` does not implement SpaceUsage"),
                        Some(format!(
                            "add `impl SpaceUsage for {ty}` reporting words of state"
                        )),
                    ));
                }
                if !contract_refs.contains(ty.as_str()) && reported.insert((ty.clone(), "test")) {
                    out.push(Finding::new(
                        "L2",
                        &file.path,
                        imp.line,
                        &format!("{ty} not in space_contracts"),
                        format!("estimator `{ty}` is not referenced from tests/space_contracts.rs"),
                        Some(format!(
                            "add a sublinearity/space assertion for `{ty}` to tests/space_contracts.rs"
                        )),
                    ));
                }
            }
        }
    }
}

/// L3 — no panicking escape hatches in library crates.
///
/// Flags `.unwrap()`, `.expect(…)`, and the `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` macros in library code. Estimators ingest
/// adversarial streams; failures must surface as
/// `hindex-common::error` values, not aborts. Plain `assert!` is *not*
/// flagged: asserting an invariant is policy, panicking on data is not.
/// Tests, benches, examples, and tooling are exempt.
pub struct NoPanicPaths;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl crate::Lint for NoPanicPaths {
    fn id(&self) -> &'static str {
        "L3"
    }
    fn summary(&self) -> &'static str {
        "no unwrap()/expect()/panic!-family in library crates"
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Library {
                continue;
            }
            let toks = &file.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || file.in_test_code(t.line) {
                    continue;
                }
                let after_dot = i > 0 && toks[i - 1].is_punct('.');
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let snippet = if after_dot && called && t.text == "unwrap" {
                    Some("unwrap()".to_string())
                } else if after_dot && called && t.text == "expect" {
                    Some(match toks.get(i + 2) {
                        Some(msg) if msg.kind == TokKind::Str => {
                            format!("expect(\"{}\")", msg.text)
                        }
                        _ => "expect(..)".to_string(),
                    })
                } else if PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    Some(format!("{}!", t.text))
                } else {
                    None
                };
                if let Some(snippet) = snippet {
                    out.push(Finding::new(
                        "L3",
                        &file.path,
                        t.line,
                        &snippet,
                        format!("`{snippet}` in library crate can abort on adversarial input"),
                        Some(
                            "return a hindex_common::error value (or degrade and assert the \
                             invariant via debug_invariant!); baseline only with justification"
                                .to_string(),
                        ),
                    ));
                }
            }
        }
    }
}

/// L4 — memory safety and determinism hygiene.
///
/// (a) Every crate root (`src/lib.rs` / `src/main.rs`, vendored shims
/// excepted) must carry `#![forbid(unsafe_code)]`.
/// (b) Library code must not reach for ambient nondeterminism:
/// `thread_rng`, entropy-based RNG constructors, and wall-clock types
/// are banned — estimators take seeds and tick counters from their
/// callers so runs replay bit-identically (the sharded-engine stress
/// tests depend on this).
///
/// One explicit exemption: [`CLOCK_SEAM`], the observability crate's
/// single wall-clock module. Latency profiling needs a real clock;
/// confining it to one audited file (whose durations feed only
/// latency histograms, never estimator state) is the policy, so the
/// exemption is carried here rather than in the baseline.
pub struct ForbidNondeterminism;

/// The one library file allowed to name wall-clock types.
pub const CLOCK_SEAM: &str = "crates/obs/src/clock.rs";

const NONDETERMINISM: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "try_from_os_rng",
    "SystemTime",
    "Instant",
];

impl crate::Lint for ForbidNondeterminism {
    fn id(&self) -> &'static str {
        "L4"
    }
    fn summary(&self) -> &'static str {
        "crate roots forbid unsafe_code; no ambient RNG/clock in library code"
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.is_crate_root && matches!(file.kind, FileKind::Library | FileKind::Tool) {
                let toks = &file.tokens;
                let has_forbid = toks.windows(7).any(|w| {
                    w[0].is_punct('#')
                        && w[1].is_punct('!')
                        && w[2].is_punct('[')
                        && w[3].is_ident("forbid")
                        && w[4].is_punct('(')
                        && w[5].is_ident("unsafe_code")
                        && w[6].is_punct(')')
                });
                if !has_forbid {
                    out.push(Finding::new(
                        "L4",
                        &file.path,
                        1,
                        "missing forbid(unsafe_code)",
                        "crate root lacks #![forbid(unsafe_code)]".to_string(),
                        Some(
                            "add `#![forbid(unsafe_code)]` below the crate docs".to_string(),
                        ),
                    ));
                }
            }
            if file.kind != FileKind::Library || file.path == CLOCK_SEAM {
                continue;
            }
            for t in &file.tokens {
                if t.kind == TokKind::Ident
                    && NONDETERMINISM.contains(&t.text.as_str())
                    && !file.in_test_code(t.line)
                {
                    out.push(Finding::new(
                        "L4",
                        &file.path,
                        t.line,
                        &format!("nondeterministic {}", t.text),
                        format!(
                            "`{}` introduces ambient nondeterminism into library code",
                            t.text
                        ),
                        Some(
                            "take a caller-provided seed (SeedableRng::seed_from_u64) or tick \
                             counter instead"
                                .to_string(),
                        ),
                    ));
                }
            }
        }
    }
}

/// L5 — every `Mergeable` impl has a merge-semantics test.
///
/// Types implementing `Mergeable` in library crates must be referenced
/// from `tests/merge_semantics.rs`, the suite asserting that
/// `merge(a, b)` behaves like the concatenated stream. Distributed
/// correctness of the sharded engine rests on exactly this property,
/// so it is pinned per type, not assumed.
pub struct MergeSemantics;

impl crate::Lint for MergeSemantics {
    fn id(&self) -> &'static str {
        "L5"
    }
    fn summary(&self) -> &'static str {
        "every Mergeable impl is exercised by tests/merge_semantics.rs"
    }
    fn cross_file(&self) -> bool {
        true
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let merge_refs = ident_set(ws.file("tests/merge_semantics.rs"));
        let mut reported: HashSet<String> = HashSet::new();
        for file in &ws.files {
            if file.kind != FileKind::Library {
                continue;
            }
            for imp in impls_in(file) {
                if imp.trait_name != "Mergeable" {
                    continue;
                }
                let ty = &imp.type_name;
                if !merge_refs.contains(ty.as_str()) && reported.insert(ty.clone()) {
                    out.push(Finding::new(
                        "L5",
                        &file.path,
                        imp.line,
                        &format!("{ty} missing merge test"),
                        format!(
                            "`Mergeable` impl for `{ty}` is not exercised by tests/merge_semantics.rs"
                        ),
                        Some(format!(
                            "add a split-stream merge-vs-concatenation test for `{ty}`"
                        )),
                    ));
                }
            }
        }
    }
}

/// L6 — every `Mergeable` impl is persistable and covered.
///
/// The engine checkpoints by snapshotting each shard, so any estimator
/// it can host (`Mergeable`) must also implement `Snapshot`, and the
/// implementation must be exercised by `tests/snapshot_roundtrip.rs`
/// (round-trip law + corruption totality). A mergeable type without a
/// durable encoding silently excludes itself from crash recovery.
pub struct SnapshotCoverage;

impl crate::Lint for SnapshotCoverage {
    fn id(&self) -> &'static str {
        "L6"
    }
    fn summary(&self) -> &'static str {
        "every Mergeable impl has a Snapshot impl covered by tests/snapshot_roundtrip.rs"
    }
    fn cross_file(&self) -> bool {
        true
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let roundtrip_refs = ident_set(ws.file("tests/snapshot_roundtrip.rs"));
        let mut snapshot_types: HashSet<String> = HashSet::new();
        for file in &ws.files {
            if file.kind != FileKind::Library {
                continue;
            }
            for imp in impls_in(file) {
                if imp.trait_name == "Snapshot" {
                    snapshot_types.insert(imp.type_name);
                }
            }
        }
        let mut reported: HashSet<String> = HashSet::new();
        for file in &ws.files {
            if file.kind != FileKind::Library {
                continue;
            }
            for imp in impls_in(file) {
                if imp.trait_name != "Mergeable" {
                    continue;
                }
                let ty = &imp.type_name;
                if !snapshot_types.contains(ty.as_str())
                    && reported.insert(format!("impl:{ty}"))
                {
                    out.push(Finding::new(
                        "L6",
                        &file.path,
                        imp.line,
                        &format!("{ty} not persistable"),
                        format!(
                            "`Mergeable` impl for `{ty}` has no `Snapshot` impl — the engine \
                             cannot checkpoint shards hosting it"
                        ),
                        Some(format!(
                            "implement `Snapshot` for `{ty}` (versioned frame, total decode)"
                        )),
                    ));
                }
                if !roundtrip_refs.contains(ty.as_str())
                    && reported.insert(format!("test:{ty}"))
                {
                    out.push(Finding::new(
                        "L6",
                        &file.path,
                        imp.line,
                        &format!("{ty} missing snapshot round-trip test"),
                        format!(
                            "`{ty}` is not referenced by tests/snapshot_roundtrip.rs, the suite \
                             asserting the round-trip law and corruption totality"
                        ),
                        Some(format!(
                            "add a round-trip + corruption case for `{ty}` to \
                             tests/snapshot_roundtrip.rs"
                        )),
                    ));
                }
            }
        }
    }
}

/// L7 — the observability layer stays wired end to end.
///
/// Two completeness checks on the tracing vocabulary:
///
/// (a) every `EventKind` variant declared in `crates/obs/src/trace.rs`
/// must be *recorded* somewhere in `crates/obs/src/observer.rs` — a
/// variant nobody emits is dead vocabulary that silently rots;
///
/// (b) every observer hook (`fn on_*` in `observer.rs`) must be called
/// from at least one file outside `crates/obs/` — a hook the engine
/// and CLI never invoke means an instrumentation point was designed
/// and then dropped on the floor.
///
/// Approximation: both checks are ident-presence, not call-graph
/// analysis; a hook mentioned in a comment token would not count
/// (comments are not lexed), but one mentioned in dead code would.
pub struct ObservabilityWiring;

/// Where the event vocabulary is declared.
const TRACE_FILE: &str = "crates/obs/src/trace.rs";
/// Where events are recorded and hooks are defined.
const OBSERVER_FILE: &str = "crates/obs/src/observer.rs";

/// Scans `enum EventKind { ... }` and returns the variant names.
/// Variants are the idents at brace depth 1 that directly follow the
/// opening brace or a comma (attribute/doc tokens are not emitted by
/// the lexer, so this is exact for fieldless enums).
fn event_kind_variants(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident("EventKind") {
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                if t.is_punct('{') {
                    break;
                }
                j += 1;
            }
            let mut depth = 0i64;
            let mut expect_variant = false;
            while let Some(t) = toks.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                    if depth == 1 {
                        expect_variant = true;
                    }
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 {
                    if t.is_punct(',') {
                        expect_variant = true;
                    } else if expect_variant && t.kind == TokKind::Ident {
                        out.push((t.text.clone(), t.line));
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Names of `fn on_*` hook definitions in a file, outside test code.
fn hook_defs(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("fn") && !file.in_test_code(t.line) {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident && name.text.starts_with("on_") {
                    out.push((name.text.clone(), name.line));
                }
            }
        }
    }
    out
}

impl crate::Lint for ObservabilityWiring {
    fn id(&self) -> &'static str {
        "L7"
    }
    fn summary(&self) -> &'static str {
        "every EventKind variant is recorded and every observer hook is called"
    }
    fn cross_file(&self) -> bool {
        true
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let Some(trace) = ws.file(TRACE_FILE) else {
            return; // no obs crate in this workspace snapshot
        };
        let observer_refs = ident_set(ws.file(OBSERVER_FILE));
        for (variant, line) in event_kind_variants(trace) {
            if !observer_refs.contains(variant.as_str()) {
                out.push(Finding::new(
                    "L7",
                    TRACE_FILE,
                    line,
                    &format!("EventKind::{variant} never recorded"),
                    format!(
                        "`EventKind::{variant}` is declared but never recorded by                          {OBSERVER_FILE}"
                    ),
                    Some(format!(
                        "emit the event from the matching observer hook, or delete                          the `{variant}` variant"
                    )),
                ));
            }
        }
        let Some(observer) = ws.file(OBSERVER_FILE) else {
            return;
        };
        let mut external_refs: HashSet<&str> = HashSet::new();
        for file in &ws.files {
            if file.path.starts_with("crates/obs/") || file.kind == FileKind::Vendored {
                continue;
            }
            for t in &file.tokens {
                if t.kind == TokKind::Ident && t.text.starts_with("on_") {
                    external_refs.insert(&t.text);
                }
            }
        }
        for (hook, line) in hook_defs(observer) {
            if !external_refs.contains(hook.as_str()) {
                out.push(Finding::new(
                    "L7",
                    OBSERVER_FILE,
                    line,
                    &format!("hook {hook} never called"),
                    format!(
                        "observer hook `{hook}` is never invoked outside crates/obs                          — an instrumentation point got designed, then dropped"
                    ),
                    Some(format!(
                        "call `{hook}` from the engine or CLI, or remove the hook"
                    )),
                ));
            }
        }
    }
}

/// L8 — the estimator ingestion vocabulary stays unified.
///
/// The estimator traits expose `ingest` / `ingest_batch`; the old
/// verbs (`push`, `update`, `push_batch`, `update_batch`) survive only
/// as `#[deprecated]` default-method shims on the traits themselves.
/// This lint flags any *impl block of an estimator trait* in library
/// code that re-defines one of the old verbs — overriding a shim
/// resurrects the legacy vocabulary and silently bypasses the
/// deprecation path.
///
/// Approximation: brace-matched scan of `impl <EstimatorTrait> for ..`
/// blocks; `fn push` on inherent impls or non-estimator traits (ring
/// buffers, `Vec` wrappers) is deliberately not flagged — except in
/// `crates/baseline/`, where the exact reference tables *are* the
/// estimators and an inherent `fn update`/`fn push` masquerades as the
/// legacy API, so there every non-test impl block is checked.
pub struct LegacyIngestVerbs;

/// The banned method names inside estimator-trait impl blocks.
const LEGACY_VERBS: &[&str] = &["push", "update", "push_batch", "update_batch"];

impl crate::Lint for LegacyIngestVerbs {
    fn id(&self) -> &'static str {
        "L8"
    }
    fn summary(&self) -> &'static str {
        "no push/update/*_batch definitions inside estimator-trait impls"
    }
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Library {
                continue;
            }
            let in_baseline = file.path.contains("crates/baseline/");
            let toks = &file.tokens;
            let mut i = 0usize;
            while i < toks.len() {
                if !toks[i].is_ident("impl") || file.in_test_code(toks[i].line) {
                    i += 1;
                    continue;
                }
                // Find `for` at angle depth 0 to confirm a trait impl,
                // remembering the trait name (last depth-0 ident).
                let mut j = i + 1;
                let mut angle = 0i64;
                let mut trait_name: Option<&str> = None;
                let mut is_estimator = false;
                while let Some(t) = toks.get(j) {
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                    } else if angle == 0 {
                        if t.is_ident("for") {
                            is_estimator = trait_name
                                .is_some_and(|n| ESTIMATOR_TRAITS.contains(&n));
                            break;
                        }
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        if t.kind == TokKind::Ident {
                            trait_name = Some(&t.text);
                        }
                    }
                    j += 1;
                }
                // Walk the impl body, flagging `fn <legacy-verb>`.
                while let Some(t) = toks.get(j) {
                    if t.is_punct('{') {
                        break;
                    }
                    j += 1;
                }
                let mut depth = 0i64;
                while let Some(t) = toks.get(j) {
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if (is_estimator || in_baseline) && t.is_ident("fn") {
                        if let Some(name) = toks.get(j + 1) {
                            if LEGACY_VERBS.contains(&name.text.as_str()) {
                                let (snippet, message) = if is_estimator {
                                    (
                                        format!("fn {} in estimator impl", name.text),
                                        format!(
                                            "estimator-trait impl re-defines legacy verb                                              `{}`; the unified vocabulary is                                              ingest/ingest_batch",
                                            name.text
                                        ),
                                    )
                                } else {
                                    (
                                        format!("fn {} in baseline impl", name.text),
                                        format!(
                                            "baseline table defines legacy verb `{}`;                                              the exact references use the same                                              ingest/ingest_batch vocabulary as the                                              sketches they calibrate",
                                            name.text
                                        ),
                                    )
                                };
                                out.push(Finding::new(
                                    "L8",
                                    &file.path,
                                    name.line,
                                    &snippet,
                                    message,
                                    Some(
                                        "implement `ingest` (and optionally                                          `ingest_batch`) instead; the deprecated                                          shims delegate automatically"
                                            .to_string(),
                                    ),
                                ));
                            }
                        }
                    }
                    j += 1;
                }
                i = j.max(i + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            sources.iter().map(|(p, c)| ((*p).to_string(), (*c).to_string())).collect(),
        )
    }

    #[test]
    fn l4_exempts_the_clock_seam_only() {
        let ws = ws(&[
            (CLOCK_SEAM, "#![forbid(unsafe_code)]\nuse std::time::Instant;\n"),
            ("crates/core/src/bad.rs", "use std::time::Instant;\n"),
        ]);
        let mut findings = Vec::new();
        crate::Lint::run(&ForbidNondeterminism, &ws, &mut findings);
        let clocky: Vec<_> = findings
            .iter()
            .filter(|f| f.snippet.contains("Instant"))
            .collect();
        assert_eq!(clocky.len(), 1, "{findings:?}");
        assert_eq!(clocky[0].file, "crates/core/src/bad.rs");
    }

    #[test]
    fn l7_flags_unrecorded_variant_and_uncalled_hook() {
        let ws = ws(&[
            (
                TRACE_FILE,
                "pub enum EventKind { Flush, Ghost }\n",
            ),
            (
                OBSERVER_FILE,
                "pub fn on_flush(&self) { record(EventKind::Flush); }\n\
                 pub fn on_orphan(&self) {}\n",
            ),
            (
                "crates/engine/src/lib.rs",
                "fn f(o: &EngineObserver) { o.on_flush(); }\n",
            ),
        ]);
        let mut findings = Vec::new();
        crate::Lint::run(&ObservabilityWiring, &ws, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("Ghost")));
        assert!(findings.iter().any(|f| f.message.contains("on_orphan")));
    }

    #[test]
    fn l7_scan_handles_the_real_trace_file() {
        let contents = std::fs::read_to_string(
            concat!(env!("CARGO_MANIFEST_DIR"), "/../obs/src/trace.rs"),
        )
        .unwrap();
        let f = SourceFile::parse(TRACE_FILE.into(), &contents);
        let names: Vec<String> =
            event_kind_variants(&f).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 10, "{names:?}");
        assert!(names.contains(&"PushBatch".to_string()));
        assert!(names.contains(&"SnapshotDecode".to_string()));
        assert!(names.contains(&"BankBatch".to_string()));
    }

    #[test]
    fn l7_event_variant_scan() {
        let f = SourceFile::parse(
            TRACE_FILE.into(),
            "pub enum EventKind {\n    PushBatch,\n    Flush,\n    Merge,\n}\n\
             pub struct Event { pub kind: EventKind }\n",
        );
        let names: Vec<String> =
            event_kind_variants(&f).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["PushBatch", "Flush", "Merge"]);
    }

    #[test]
    fn l8_flags_legacy_verbs_only_in_estimator_impls() {
        let ws = ws(&[(
            "crates/sketch/src/x.rs",
            "impl AggregateEstimator for Foo {\n\
                 fn ingest(&mut self, v: u64) {}\n\
                 fn push(&mut self, v: u64) { self.ingest(v) }\n\
             }\n\
             impl Ring {\n\
                 fn push(&mut self, v: u64) {}\n\
             }\n\
             impl Iterator for Foo {\n\
                 fn update(&mut self) {}\n\
             }\n",
        )]);
        let mut findings = Vec::new();
        crate::Lint::run(&LegacyIngestVerbs, &ws, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].snippet.contains("fn push"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn l8_flags_inherent_legacy_verbs_in_baseline() {
        let ws = ws(&[
            (
                "crates/baseline/src/table.rs",
                "impl Table {\n\
                     pub fn update(&mut self, i: u64, d: i64) {}\n\
                     pub fn h_index(&self) -> u64 { 0 }\n\
                 }\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     impl Helper { fn push(&mut self, v: u64) {} }\n\
                 }\n",
            ),
            // The same inherent verb outside baseline stays legal.
            (
                "crates/sketch/src/ring.rs",
                "impl Ring { pub fn push(&mut self, v: u64) {} }\n",
            ),
        ]);
        let mut findings = Vec::new();
        crate::Lint::run(&LegacyIngestVerbs, &ws, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].snippet.contains("fn update in baseline impl"));
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn impl_scan_recovers_traits_and_types() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs".into(),
            "impl Mergeable for Foo {}\n\
             impl<E: Mergeable + Send> SpaceUsage for Sharded<E, T> {}\n\
             impl hindex_common::TurnstileEstimator for Bar {}\n\
             impl Baz { fn inherent(&self) { for x in 0..3 { let _ = x; } } }\n\
             fn ret() -> impl Iterator<Item = u64> { 0..3 }\n",
        );
        let decls: Vec<(String, String)> = impls_in(&f)
            .into_iter()
            .map(|d| (d.trait_name, d.type_name))
            .collect();
        assert_eq!(
            decls,
            vec![
                ("Mergeable".to_string(), "Foo".to_string()),
                ("SpaceUsage".to_string(), "Sharded".to_string()),
                ("TurnstileEstimator".to_string(), "Bar".to_string()),
            ]
        );
    }
}
