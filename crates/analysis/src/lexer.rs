//! A minimal hand-rolled Rust lexer.
//!
//! The lint pass only needs a *token stream with line numbers* in which
//! comments and string contents cannot masquerade as code, so this lexer
//! is deliberately much simpler than a real Rust front end:
//!
//! - line comments (`//`, `///`, `//!`) and nested block comments are
//!   skipped entirely — a `.unwrap()` in a doc example never lints;
//! - string literals (plain, raw `r#"…"#`, byte, C) become single
//!   [`TokKind::Str`] tokens carrying their contents, so lints can key
//!   on e.g. an `expect("…")` message without matching inside it;
//! - `'a` lifetimes are distinguished from `'a'` char literals;
//! - every remaining non-identifier character is a one-character
//!   [`TokKind::Punct`] token (so `>>` is two `>` tokens — lints that
//!   track bracket depth must cope, and do).
//!
//! It does **not** attempt to parse: no precedence, no items, no types.
//! The lints in [`crate::lints`] work on token subsequences only.

/// The coarse classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, unprefixed).
    Ident,
    /// A numeric literal (integer or float, suffix included).
    Number,
    /// A string literal of any flavour; `text` holds the contents
    /// without quotes or raw-string hashes.
    Str,
    /// A character or byte literal; `text` holds the contents.
    Char,
    /// A lifetime such as `'a` or `'static`; `text` omits the quote.
    Lifetime,
    /// A single punctuation character; `text` is that character.
    Punct,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse kind of the token.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True if this token is the single punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes ident-continue characters and returns them.
    fn eat_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Consumes a `"…"` body (opening quote already consumed),
    /// honouring backslash escapes. Returns the contents.
    fn eat_quoted(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    s.push(c);
                    if let Some(esc) = self.bump() {
                        s.push(esc);
                    }
                }
                _ => s.push(c),
            }
        }
        s
    }

    /// Consumes a raw-string body: opening `"` already consumed, the
    /// terminator is `"` followed by `hashes` `#` characters.
    fn eat_raw(&mut self, hashes: usize) -> String {
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            s.push(c);
        }
        s
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input
/// degrades to punctuation tokens rather than an error, which is the
/// right behaviour for a linter that must not crash on a half-edited
/// file.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }

        // Identifiers, keywords, and string-literal prefixes.
        if is_ident_start(c) {
            let word = cur.eat_ident();
            // Raw identifier r#type — keep the unprefixed name.
            if word == "r" && cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
                cur.bump();
                let name = cur.eat_ident();
                out.push(Token {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
                continue;
            }
            // Raw strings: r"…", r#"…"#, br#"…"#, cr"…".
            if matches!(word.as_str(), "r" | "br" | "cr") {
                let mut hashes = 0usize;
                while cur.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    let text = cur.eat_raw(hashes);
                    out.push(Token {
                        kind: TokKind::Str,
                        text,
                        line,
                    });
                    continue;
                }
            }
            // Plain-prefixed strings b"…" / c"…" and byte chars b'…'.
            if matches!(word.as_str(), "b" | "c") && cur.peek(0) == Some('"') {
                cur.bump();
                let text = cur.eat_quoted();
                out.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                continue;
            }
            if word == "b" && cur.peek(0) == Some('\'') {
                cur.bump();
                let text = eat_char_body(&mut cur);
                out.push(Token {
                    kind: TokKind::Char,
                    text,
                    line,
                });
                continue;
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: word,
                line,
            });
            continue;
        }

        // Numbers (loose: digits then ident-continue; optional fraction).
        if c.is_ascii_digit() {
            let mut s = cur.eat_ident();
            if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                cur.bump();
                s.push('.');
                s.push_str(&cur.eat_ident());
            }
            out.push(Token {
                kind: TokKind::Number,
                text: s,
                line,
            });
            continue;
        }

        // Plain strings.
        if c == '"' {
            cur.bump();
            let text = cur.eat_quoted();
            out.push(Token {
                kind: TokKind::Str,
                text,
                line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            cur.bump();
            let next = cur.peek(0);
            let is_char = match next {
                Some('\\') => true,
                Some(n) if n != '\'' => cur.peek(1) == Some('\''),
                _ => false,
            };
            if is_char {
                let text = eat_char_body(&mut cur);
                out.push(Token {
                    kind: TokKind::Char,
                    text,
                    line,
                });
            } else {
                let text = cur.eat_ident();
                out.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
            }
            continue;
        }

        // Everything else: one-character punctuation.
        cur.bump();
        out.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }

    out
}

/// Consumes a char-literal body up to and including the closing `'`
/// (opening quote already consumed).
fn eat_char_body(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                s.push(c);
                if let Some(esc) = cur.bump() {
                    s.push(esc);
                }
            }
            _ => s.push(c),
        }
    }
    s
}

/// Returns the 1-based line ranges `(start, end)` of items marked
/// `#[test]` or `#[cfg(test)]` (or any `cfg` whose argument mentions the
/// bare `test` predicate, e.g. `#[cfg(all(test, feature = "x"))]`).
///
/// A marked item's range runs from the attribute to the matching close
/// brace of its body (or to the terminating `;` for bodiless items), so
/// an entire `#[cfg(test)] mod tests { … }` is covered. Ranges may nest;
/// callers just test membership.
#[must_use]
pub fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let Some(close) = matching(tokens, i + 1, '[', ']') else {
            break;
        };
        let inner = &tokens[i + 2..close];
        let is_test_attr = inner.first().is_some_and(|t| t.is_ident("test"))
            || (inner.first().is_some_and(|t| t.is_ident("cfg"))
                && inner.iter().any(|t| t.is_ident("test")));
        let mut j = close + 1;
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => return ranges,
            }
        }
        // Find the item body: first `{` (to its matching `}`) or a `;`.
        let mut end_line = start_line;
        while let Some(t) = tokens.get(j) {
            if t.is_punct(';') {
                end_line = t.line;
                break;
            }
            if t.is_punct('{') {
                match matching(tokens, j, '{', '}') {
                    Some(c) => end_line = tokens[c].line,
                    None => end_line = u32::MAX,
                }
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = close + 1;
    }
    ranges
}

/// Index of the token matching the opener at `open_idx`, tracking
/// nesting depth of `open`/`close` punctuation.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
            // x.unwrap() in a line comment
            /* x.unwrap() /* nested */ still comment */
            /// ```
            /// doc.unwrap();
            /// ```
            let s = "call .unwrap() inside a string";
            let r = r#"raw "quoted" .unwrap()"#;
            safe();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"safe".to_string()));
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.contains("raw \"quoted\""));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\nb\n\"two\nlines\"\nc";
        let toks = lex(src);
        assert_eq!(toks.len(), 4);
        assert_eq!((toks[2].kind, toks[2].line), (TokKind::Str, 3));
        assert_eq!(toks[3].line, 5);
    }

    #[test]
    fn cfg_test_mod_range_covers_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let toks = lex(src);
        let ranges = test_ranges(&toks);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn test_attr_and_cfg_all_are_detected() {
        let src = "#[test]\nfn t() { body(); }\n#[cfg(all(test, feature = \"slow\"))]\nfn u() { body(); }\n#[cfg(feature = \"test\")]\nfn not_test() {}\n";
        let ranges = test_ranges(&lex(src));
        assert_eq!(ranges, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn raw_identifiers_unprefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let src = "before(); /* 1 /* 2 /* 3 */ 2 */ 1 */ after();";
        assert_eq!(idents(src), vec!["before", "after"]);
        // An asterisk glued to the closer is not a second opener.
        assert_eq!(idents("a(); /* x **/ b();"), vec!["a", "b"]);
        // Unterminated nesting consumes to EOF instead of diverging.
        assert_eq!(idents("x(); /* /* never closed */"), vec!["x"]);
    }

    #[test]
    fn raw_string_hash_counts_disambiguate_terminators() {
        // `"#` inside an `r##"…"##` body is content, not a terminator.
        let toks = lex(r####"let s = r##"quote "# not done"##;"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r##"quote "# not done"##);
        // A quote just before the real terminator stays in the body.
        let toks = lex(r##"r#"a""#"##);
        assert_eq!(toks[0].text, "a\"");
        // Zero-hash raw strings end at the first quote.
        let toks = lex("r\"ab\" tail");
        assert_eq!((toks[0].kind, toks[0].text.as_str()), (TokKind::Str, "ab"));
        assert!(toks[1].is_ident("tail"));
        // Empty bodies at several hash depths.
        for src in [r#"r"""#, r##"r#""#"##, r####"r###""###"####] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!((toks[0].kind, toks[0].text.as_str()), (TokKind::Str, ""), "{src}");
        }
        // Surplus hashes after the terminator degrade to punctuation.
        let toks = lex(r###"r#"x"## y"###);
        assert_eq!((toks[0].kind, toks[0].text.as_str()), (TokKind::Str, "x"));
        assert!(toks[1].is_punct('#'));
        assert!(toks[2].is_ident("y"));
    }

    #[test]
    fn byte_and_c_raw_strings_share_the_machinery() {
        let toks = lex(r###"br#"bytes"# cr#"c str"# b"plain" c"also""###);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "c str", "plain", "also"]);
    }
}
