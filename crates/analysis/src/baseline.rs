//! The committed baseline of grandfathered findings.
//!
//! Format (one entry per line, `#`-lines and blanks ignored):
//!
//! ```text
//! L3|crates/engine/src/lib.rs|expect("shard worker panicked")  # worker panic propagation is correct
//! ```
//!
//! The part before ` # ` is a [`crate::Finding::key`]; the part after
//! is a **mandatory justification**. Keys are content-derived (no line
//! numbers), so entries survive edits elsewhere in the file; a key that
//! no longer matches any finding is reported as *stale* so the file
//! cannot silently rot. Stale entries are a **hard error** on full
//! runs — fixing a finding and deleting its suppression are one
//! change, not two — and a warning under `--quick`, where cross-file
//! findings are invisible and their entries would always look stale.

use crate::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The finding key this entry silences.
    pub key: String,
    /// Why the finding is accepted (empty = unjustified, an error).
    pub justification: String,
    /// 1-based line in the baseline file, for diagnostics.
    pub line: u32,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All entries in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses baseline text. Never fails: malformed lines become
    /// unjustified entries, which `--deny` then rejects loudly.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, justification) = match line.split_once(" # ") {
                Some((k, j)) => (k.trim_end(), j.trim()),
                None => (line, ""),
            };
            entries.push(Entry {
                key: key.to_string(),
                justification: justification.to_string(),
                line: (idx + 1) as u32,
            });
        }
        Self { entries }
    }
}

/// The result of subtracting a baseline from a finding list.
#[derive(Debug)]
pub struct Applied {
    /// Findings not covered by the baseline — these fail `--deny`.
    pub new: Vec<Finding>,
    /// Number of findings silenced by baseline entries.
    pub silenced: usize,
    /// Baseline entries whose key matched no finding (warned).
    pub stale: Vec<Entry>,
    /// Baseline entries with an empty justification (fail `--deny`).
    pub unjustified: Vec<Entry>,
}

/// Splits `findings` into new vs baselined and audits the baseline
/// itself for stale or unjustified entries.
#[must_use]
pub fn apply(baseline: &Baseline, findings: Vec<Finding>) -> Applied {
    let mut used = vec![false; baseline.entries.len()];
    let mut new = Vec::new();
    let mut silenced = 0usize;
    for finding in findings {
        let key = finding.key();
        match baseline.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                used[i] = true;
                silenced += 1;
            }
            None => new.push(finding),
        }
    }
    let stale = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    let unjustified = baseline
        .entries
        .iter()
        .filter(|e| e.justification.is_empty())
        .cloned()
        .collect();
    Applied {
        new,
        silenced,
        stale,
        unjustified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, snippet: &str) -> Finding {
        Finding::new(lint, file, 10, snippet, "msg".into(), None)
    }

    #[test]
    fn parse_skips_comments_and_requires_justification() {
        let b = Baseline::parse(
            "# header comment\n\
             \n\
             L3|a.rs|unwrap()  # legacy, tracked in ROADMAP\n\
             L1|b.rs|x * MERSENNE_P\n",
        );
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].key, "L3|a.rs|unwrap()");
        assert_eq!(b.entries[0].justification, "legacy, tracked in ROADMAP");
        assert!(b.entries[1].justification.is_empty());
    }

    #[test]
    fn apply_partitions_and_flags_stale() {
        let b = Baseline::parse(
            "L3|a.rs|unwrap()  # ok\n\
             L3|gone.rs|expect(\"old\")  # fixed long ago\n",
        );
        let applied = apply(
            &b,
            vec![finding("L3", "a.rs", "unwrap()"), finding("L3", "c.rs", "panic!")],
        );
        assert_eq!(applied.silenced, 1);
        assert_eq!(applied.new.len(), 1);
        assert_eq!(applied.new[0].file, "c.rs");
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].key, "L3|gone.rs|expect(\"old\")");
        assert!(applied.unjustified.is_empty());
    }

    #[test]
    fn keys_are_line_number_free() {
        let a = Finding::new("L3", "a.rs", 10, "unwrap()", "m".into(), None);
        let b = Finding::new("L3", "a.rs", 99, "unwrap()", "m".into(), None);
        assert_eq!(a.key(), b.key());
    }
}
