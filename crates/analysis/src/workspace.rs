//! Workspace discovery: walks the repository, lexes **and parses**
//! every `.rs` file, reads every `Cargo.toml` manifest, and classifies
//! each source file so lints know which rules apply where.
//!
//! Since the AST upgrade, a [`SourceFile`] carries three synchronized
//! views of the same source: raw token stream (expression-level
//! scans), item tree (structure: fns/impls/traits with spans), and the
//! `#[test]` line ranges (exemption policy). Manifests feed the
//! feature-gate consistency lint (L12), which must see `[features]`
//! declarations and forwarding edges — facts that exist only in
//! `Cargo.toml`, not in any `.rs` file.

use crate::ast::Item;
use crate::lexer::{lex, test_ranges, Token};
use crate::parse::parse;
use std::fs;
use std::io;
use std::path::Path;

/// The workspace's library crates: code that ships in the estimator
/// stack and is held to the strictest lint rules (L1, L4, L9).
pub const LIBRARY_CRATES: &[&str] = &[
    "common", "hashing", "sketch", "stream", "core", "baseline", "engine", "obs",
];

/// How a source file is classified for linting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library-crate source (including the root `hindex` facade in
    /// `src/`): all lints apply.
    Library,
    /// First-party tooling (`cli`, `bench`, this crate): exempt from
    /// the content lints, but crate roots still need L4's `forbid`.
    Tool,
    /// Tests, benches, and examples: exempt from content lints; L2/L11
    /// read some of these files as the *reference* test suites.
    Test,
    /// Vendored offline shims (`crates/rand`, `crates/proptest`):
    /// stand-ins for external code, exempt from every lint.
    Vendored,
}

/// One lexed, parsed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repository-relative path with `/` separators.
    pub path: String,
    /// Lint classification.
    pub kind: FileKind,
    /// True for `src/lib.rs` / `src/main.rs` crate roots.
    pub is_crate_root: bool,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// The parsed item tree (tiles the token stream; see
    /// [`crate::ast::check_tiling`]).
    pub items: Vec<Item>,
    /// 1-based line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// FNV-1a hash of the file's bytes — the incremental cache's
    /// change-detection key.
    pub content_hash: u64,
}

impl SourceFile {
    /// Builds a file from its repo-relative path and contents.
    #[must_use]
    pub fn parse(path: String, contents: &str) -> Self {
        let tokens = lex(contents);
        let items = parse(&tokens);
        let test_ranges = test_ranges(&tokens);
        let kind = classify(&path);
        let is_crate_root = path.ends_with("src/lib.rs") || path.ends_with("src/main.rs");
        Self {
            path,
            kind,
            is_crate_root,
            tokens,
            items,
            test_ranges,
            content_hash: fnv1a_bytes(contents.as_bytes()),
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// The crate directory this file belongs to (`crates/core` for
    /// `crates/core/src/lib.rs`, `""` for root-workspace files).
    #[must_use]
    pub fn crate_dir(&self) -> &str {
        if let Some(rest) = self.path.strip_prefix("crates/") {
            if let Some(slash) = rest.find('/') {
                return &self.path[..("crates/".len() + slash)];
            }
        }
        ""
    }
}

/// FNV-1a over raw bytes — the same digest family the runtime crates
/// use for state fingerprints, reused here for cache keys.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn classify(path: &str) -> FileKind {
    if path.starts_with("crates/rand/") || path.starts_with("crates/proptest/") {
        return FileKind::Vendored;
    }
    let in_dir = |d: &str| {
        path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"))
    };
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::Test;
    }
    if path.starts_with("src/") {
        return FileKind::Library;
    }
    if LIBRARY_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    {
        return FileKind::Library;
    }
    FileKind::Tool
}

/// One `Cargo.toml`, reduced to the facts L12 needs: the crate's name
/// and its `[features]` table (feature name → forwarded entries).
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Directory containing the manifest, repo-relative (`""` for the
    /// workspace root).
    pub dir: String,
    /// `package.name`, if present (the root virtual manifest has none).
    pub package_name: Option<String>,
    /// `[features]` entries: name → list of forwarded strings
    /// (`"hindex-common/debug_invariants"`-style).
    pub features: Vec<(String, Vec<String>)>,
}

impl Manifest {
    /// Parses the subset of TOML this tool needs: `[section]` headers,
    /// `key = "value"`, and `key = [ "a", "b" ]` (single-line or
    /// multi-line arrays). Anything else is ignored.
    #[must_use]
    pub fn parse(dir: String, contents: &str) -> Self {
        let mut package_name = None;
        let mut features = Vec::new();
        let mut section = String::new();
        let mut pending: Option<(String, Vec<String>)> = None;
        for raw in contents.lines() {
            let line = raw.split_once('#').map_or(raw, |(l, _)| l).trim();
            if line.is_empty() {
                continue;
            }
            if let Some((key, mut values)) = pending.take() {
                // Inside a multi-line array: accumulate until `]`.
                let done = line.contains(']');
                let body = line.split(']').next().unwrap_or("");
                values.extend(quoted_strings(body));
                if done {
                    features.push((key, values));
                } else {
                    pending = Some((key, values));
                }
                continue;
            }
            if line.starts_with('[') {
                section = line.trim_matches(['[', ']']).trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if section == "package" && key == "name" {
                package_name = Some(value.trim_matches('"').to_string());
            }
            if section == "features" {
                if value.starts_with('[') && !value.contains(']') {
                    pending = Some((key, quoted_strings(&value[1..])));
                } else {
                    features.push((key, quoted_strings(value)));
                }
            }
        }
        if let Some((key, values)) = pending {
            features.push((key, values));
        }
        Self {
            dir,
            package_name,
            features,
        }
    }

    /// The forwarding list for `feature`, if declared.
    #[must_use]
    pub fn feature(&self, feature: &str) -> Option<&[String]> {
        self.features
            .iter()
            .find(|(k, _)| k == feature)
            .map(|(_, v)| v.as_slice())
    }
}

fn quoted_strings(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + close + 2..];
    }
    out
}

/// The whole lexed-and-parsed workspace: inputs to every lint.
#[derive(Debug)]
pub struct Workspace {
    /// All discovered source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// All discovered `Cargo.toml` manifests, sorted by directory.
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, contents)` pairs.
    /// Paths ending in `Cargo.toml` are parsed as manifests; everything
    /// else is treated as Rust source. Used by the fixture tests;
    /// [`Workspace::load`] is the real path.
    #[must_use]
    pub fn from_sources(sources: Vec<(String, String)>) -> Self {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        for (path, contents) in sources {
            if path.ends_with("Cargo.toml") {
                let dir = path
                    .strip_suffix("Cargo.toml")
                    .unwrap_or("")
                    .trim_end_matches('/')
                    .to_string();
                manifests.push(Manifest::parse(dir, &contents));
            } else {
                files.push(SourceFile::parse(path, &contents));
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        manifests.sort_by(|a, b| a.dir.cmp(&b.dir));
        Self { files, manifests }
    }

    /// Walks `root` collecting every `.rs` file and `Cargo.toml`
    /// outside `target/` and VCS metadata, as raw `(path, contents)`
    /// pairs sorted by path. The incremental cache hashes these
    /// *before* any parsing so an all-clean run can skip the parse
    /// entirely.
    pub fn read_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
        let mut sources = Vec::new();
        walk(root, root, &mut sources)?;
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(sources)
    }

    /// Walks `root` and lexes/parses everything ([`Self::read_sources`]
    /// followed by [`Self::from_sources`]).
    pub fn load(root: &Path) -> io::Result<Self> {
        Ok(Self::from_sources(Self::read_sources(root)?))
    }

    /// Looks up a file by its repo-relative path.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Looks up a manifest by crate directory.
    #[must_use]
    pub fn manifest(&self, dir: &str) -> Option<&Manifest> {
        self.manifests.iter().find(|m| m.dir == dir)
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let contents = fs::read_to_string(&path)?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_policy() {
        assert_eq!(classify("crates/sketch/src/l0.rs"), FileKind::Library);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("crates/engine/src/lib.rs"), FileKind::Library);
        assert_eq!(classify("crates/obs/src/metrics.rs"), FileKind::Library);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Tool);
        assert_eq!(classify("crates/analysis/src/lib.rs"), FileKind::Tool);
        assert_eq!(classify("tests/space_contracts.rs"), FileKind::Test);
        assert_eq!(classify("crates/sketch/tests/extra.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Test);
        assert_eq!(classify("crates/rand/src/lib.rs"), FileKind::Vendored);
    }

    #[test]
    fn crate_roots_are_flagged() {
        let f = SourceFile::parse("crates/core/src/lib.rs".into(), "//! Docs\n");
        assert!(f.is_crate_root);
        let g = SourceFile::parse("crates/core/src/turnstile.rs".into(), "//! Docs\n");
        assert!(!g.is_crate_root);
        assert_eq!(g.crate_dir(), "crates/core");
        assert_eq!(
            SourceFile::parse("src/lib.rs".into(), "").crate_dir(),
            ""
        );
    }

    #[test]
    fn manifests_parse_name_and_features() {
        let toml = r#"
[package]
name = "hindex-core" # comment
edition = "2021"

[features]
default = []
debug_invariants = ["hindex-common/debug_invariants", "hindex-sketch/debug_invariants"]
multi = [
    "a/x",
    "b/y",
]

[dependencies]
hindex-common = { path = "../common" }
"#;
        let m = Manifest::parse("crates/core".into(), toml);
        assert_eq!(m.package_name.as_deref(), Some("hindex-core"));
        assert_eq!(
            m.feature("debug_invariants"),
            Some(
                &[
                    "hindex-common/debug_invariants".to_string(),
                    "hindex-sketch/debug_invariants".to_string()
                ][..]
            )
        );
        assert_eq!(
            m.feature("multi"),
            Some(&["a/x".to_string(), "b/y".to_string()][..])
        );
        assert_eq!(m.feature("default"), Some(&[][..]));
        assert!(m.feature("missing").is_none());
    }

    #[test]
    fn from_sources_splits_rust_and_manifests() {
        let ws = Workspace::from_sources(vec![
            ("crates/x/Cargo.toml".into(), "[package]\nname = \"x\"\n".into()),
            ("crates/x/src/lib.rs".into(), "fn a() {}".into()),
        ]);
        assert_eq!(ws.files.len(), 1);
        assert_eq!(ws.manifests.len(), 1);
        assert_eq!(ws.manifest("crates/x").unwrap().package_name.as_deref(), Some("x"));
    }

    #[test]
    fn content_hash_tracks_bytes() {
        let a = SourceFile::parse("src/a.rs".into(), "fn a() {}");
        let b = SourceFile::parse("src/a.rs".into(), "fn a() { }");
        assert_ne!(a.content_hash, b.content_hash);
    }
}
