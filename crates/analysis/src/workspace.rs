//! Workspace discovery: walks the repository, lexes every `.rs` file,
//! and classifies each one so lints know which rules apply where.

use crate::lexer::{lex, test_ranges, Token};
use std::fs;
use std::io;
use std::path::Path;

/// The workspace's library crates: code that ships in the estimator
/// stack and is held to the strictest lint rules (L1, L3, L4).
pub const LIBRARY_CRATES: &[&str] = &[
    "common", "hashing", "sketch", "stream", "core", "baseline", "engine", "obs",
];

/// How a source file is classified for linting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library-crate source (including the root `hindex` facade in
    /// `src/`): all lints apply.
    Library,
    /// First-party tooling (`cli`, `bench`, this crate): exempt from
    /// the content lints, but crate roots still need L4's `forbid`.
    Tool,
    /// Tests, benches, and examples: exempt from content lints; L2/L5
    /// read some of these files as the *reference* test suites.
    Test,
    /// Vendored offline shims (`crates/rand`, `crates/proptest`):
    /// stand-ins for external code, exempt from every lint.
    Vendored,
}

/// One lexed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repository-relative path with `/` separators.
    pub path: String,
    /// Lint classification.
    pub kind: FileKind,
    /// True for `src/lib.rs` / `src/main.rs` crate roots.
    pub is_crate_root: bool,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// 1-based line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a file from its repo-relative path and contents.
    #[must_use]
    pub fn parse(path: String, contents: &str) -> Self {
        let tokens = lex(contents);
        let test_ranges = test_ranges(&tokens);
        let kind = classify(&path);
        let is_crate_root = path.ends_with("src/lib.rs") || path.ends_with("src/main.rs");
        Self {
            path,
            kind,
            is_crate_root,
            tokens,
            test_ranges,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

fn classify(path: &str) -> FileKind {
    if path.starts_with("crates/rand/") || path.starts_with("crates/proptest/") {
        return FileKind::Vendored;
    }
    let in_dir = |d: &str| {
        path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"))
    };
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::Test;
    }
    if path.starts_with("src/") {
        return FileKind::Library;
    }
    if LIBRARY_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    {
        return FileKind::Library;
    }
    FileKind::Tool
}

/// The whole lexed workspace: inputs to every lint.
#[derive(Debug)]
pub struct Workspace {
    /// All discovered source files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, contents)` pairs.
    /// Used by the fixture tests; [`Workspace::load`] is the real path.
    #[must_use]
    pub fn from_sources(sources: Vec<(String, String)>) -> Self {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(p, c)| SourceFile::parse(p, &c))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Self { files }
    }

    /// Walks `root` collecting and lexing every `.rs` file outside
    /// `target/` and VCS metadata.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut sources = Vec::new();
        walk(root, root, &mut sources)?;
        Ok(Self::from_sources(sources))
    }

    /// Looks up a file by its repo-relative path.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let contents = fs::read_to_string(&path)?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_policy() {
        assert_eq!(classify("crates/sketch/src/l0.rs"), FileKind::Library);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("crates/engine/src/lib.rs"), FileKind::Library);
        assert_eq!(classify("crates/obs/src/metrics.rs"), FileKind::Library);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Tool);
        assert_eq!(classify("crates/analysis/src/lib.rs"), FileKind::Tool);
        assert_eq!(classify("tests/space_contracts.rs"), FileKind::Test);
        assert_eq!(classify("crates/sketch/tests/extra.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Test);
        assert_eq!(classify("crates/rand/src/lib.rs"), FileKind::Vendored);
    }

    #[test]
    fn crate_roots_are_flagged() {
        let f = SourceFile::parse("crates/core/src/lib.rs".into(), "//! Docs\n");
        assert!(f.is_crate_root);
        let g = SourceFile::parse("crates/core/src/turnstile.rs".into(), "//! Docs\n");
        assert!(!g.is_crate_root);
    }
}
