//! End-to-end tests of the `hindex-analysis` binary: stale-baseline
//! enforcement, the incremental cache, report formats, and the
//! baseline/deny workflow — each against a throwaway workspace under
//! the system temp dir, so the real repository is never touched.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A conforming library crate root (no findings under any lint).
const CLEAN: &str = "//! Crate docs.\n\
                     #![forbid(unsafe_code)]\n\
                     \n\
                     /// Canonicalise via the checked helper.\n\
                     pub fn residue(delta: i64) -> u64 {\n\
                         hindex_hashing::from_i64(delta)\n\
                     }\n";

/// A seeded L10 violation: raw `+` on a stream-carried counter.
const OVERFLOWY: &str = "#![forbid(unsafe_code)]\n\
                         pub struct Acc { total: u64 }\n\
                         impl Acc {\n\
                             pub fn ingest(&mut self, delta: u64) {\n\
                                 self.total = self.total + delta;\n\
                             }\n\
                         }\n";

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hindex-analysis-cli-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, contents).unwrap();
}

/// Runs the binary; returns (success, stdout, stderr).
fn run(root: &Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hindex-analysis"))
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn stale_baseline_entry_fails_full_run_and_warns_quick() {
    let root = temp_root("stale");
    write(&root, "crates/sketch/src/lib.rs", CLEAN);
    write(
        &root,
        "crates/analysis/baseline.txt",
        "L9|crates/sketch/src/lib.rs|unwrap()  # fixed ages ago\n",
    );

    // Full run: hard failure, with an actionable message.
    let (ok, _stdout, stderr) = run(&root, &[]);
    assert!(!ok, "stale suppression must fail the run: {stderr}");
    assert!(
        stderr.contains("remove stale suppression"),
        "stderr should say what to do: {stderr}"
    );

    // Quick run: the same entry only warns (cross-file findings are
    // invisible, so stale detection is unreliable there).
    let (ok, _stdout, stderr) = run(&root, &["--quick"]);
    assert!(ok, "quick run must not fail on stale entries: {stderr}");
    assert!(stderr.contains("possibly stale"), "{stderr}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cache_replays_clean_files_and_tracks_edits() {
    let root = temp_root("cache");
    write(&root, "crates/sketch/src/lib.rs", CLEAN);
    write(&root, "crates/sketch/src/extra.rs", "//! More docs.\npub fn two() -> u64 { 2 }\n");

    // Cold run: every file is a miss; the cache file appears.
    let (ok, stdout, _) = run(&root, &[]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cache 0 hit / 2 miss"), "{stdout}");
    assert!(root.join("target/analysis-cache.json").is_file());

    // Warm run: every file is a hit.
    let (ok, stdout, _) = run(&root, &[]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cache 2 hit / 0 miss"), "{stdout}");

    // Touch one file: exactly that file re-lints.
    write(&root, "crates/sketch/src/extra.rs", "//! More docs.\npub fn two() -> u64 { 3 }\n");
    let (ok, stdout, _) = run(&root, &[]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cache 1 hit / 1 miss"), "{stdout}");

    // --no-cache bypasses both read and write.
    let (ok, stdout, _) = run(&root, &["--no-cache"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cache off"), "{stdout}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cached_replay_reports_identical_findings() {
    let root = temp_root("replay");
    write(&root, "crates/core/src/acc.rs", OVERFLOWY);

    let (_, cold, _) = run(&root, &[]);
    assert!(cold.contains("1 new finding(s)"), "{cold}");
    let (_, warm, _) = run(&root, &[]);
    assert!(warm.contains("1 new finding(s)"), "replay must not drop findings: {warm}");
    assert!(warm.contains("cache 1 hit / 0 miss"), "{warm}");
    // The finding block itself is byte-identical either way.
    let block = |s: &str| {
        s.lines()
            .filter(|l| l.contains("[L10]") || l.contains("baseline key:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(block(&cold), block(&warm));
    assert!(!block(&cold).is_empty());

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sarif_report_is_written_to_output_file() {
    let root = temp_root("sarif");
    write(&root, "crates/core/src/acc.rs", OVERFLOWY);

    let sarif_path = root.join("target/analysis.sarif");
    let (ok, _stdout, stderr) = run(
        &root,
        &["--format", "sarif", "--output", sarif_path.to_str().unwrap()],
    );
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&sarif_path).unwrap();
    assert!(text.contains("sarif-2.1.0"), "schema pointer present");
    assert!(text.contains("\"ruleId\": \"L10\""), "{text}");
    assert!(text.contains("crates/core/src/acc.rs"), "{text}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deny_fails_then_baseline_with_justification_clears() {
    let root = temp_root("deny");
    write(&root, "crates/core/src/acc.rs", OVERFLOWY);

    let (ok, stdout, _) = run(&root, &["--deny"]);
    assert!(!ok, "--deny must fail on a new finding");
    assert!(stdout.contains("[L10]"), "{stdout}");

    // Lift the printed baseline key into a justified suppression.
    let key = stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("baseline key: "))
        .expect("report prints the key")
        .to_string();
    write(
        &root,
        "crates/analysis/baseline.txt",
        &format!("{key}  # seeded fixture, audited\n"),
    );
    let (ok, stdout, stderr) = run(&root, &["--deny"]);
    assert!(ok, "baselined finding must pass --deny: {stdout}{stderr}");
    assert!(stdout.contains("1 baselined"), "{stdout}");

    // An unjustified entry is itself a --deny failure.
    write(&root, "crates/analysis/baseline.txt", &format!("{key}\n"));
    let (ok, _stdout, stderr) = run(&root, &["--deny"]);
    assert!(!ok, "unjustified entries must fail --deny");
    assert!(stderr.contains("no justification"), "{stderr}");

    std::fs::remove_dir_all(&root).ok();
}
