//! Parser validation against *real* workspace sources (golden tests)
//! plus a property test that the span-tiling invariant — every lexed
//! token covered by exactly one top-level AST span — holds on
//! adversarial token soup, not just well-formed Rust.

use hindex_analysis::ast::{check_tiling, Item, ItemKind};
use hindex_analysis::lexer::lex;
use hindex_analysis::parse::parse;
use std::path::PathBuf;

fn repo_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn parse_checked(src: &str) -> (usize, Vec<Item>) {
    let tokens = lex(src);
    let items = parse(&tokens);
    check_tiling(&items, tokens.len()).expect("span tiling on real source");
    (tokens.len(), items)
}

/// Flattens the item tree and collects `(kind-tag, name)` facts.
fn named_items(items: &[Item], out: &mut Vec<(&'static str, String)>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => out.push(("fn", f.name.clone())),
            ItemKind::Struct(s) => out.push(("struct", s.name.clone())),
            ItemKind::Trait(t) => out.push(("trait", t.name.clone())),
            ItemKind::Impl(i) => out.push((
                "impl",
                match &i.trait_name {
                    Some(t) => format!("{t} for {}", i.self_ty),
                    None => i.self_ty.clone(),
                },
            )),
            _ => {}
        }
        named_items(item.children(), out);
    }
}

fn facts(src: &str) -> Vec<(&'static str, String)> {
    let (_count, items) = parse_checked(src);
    let mut out = Vec::new();
    named_items(&items, &mut out);
    out
}

#[test]
fn golden_common_traits() {
    let src = repo_file("crates/common/src/traits.rs");
    let facts = facts(&src);
    for trait_name in [
        "Estimate",
        "AggregateEstimator",
        "CashRegisterEstimator",
        "TurnstileEstimator",
        "Mergeable",
        "EstimatorParams",
        "SpaceUsage",
    ] {
        assert!(
            facts.iter().any(|(k, n)| *k == "trait" && n == trait_name),
            "trait `{trait_name}` not found; parsed: {facts:?}"
        );
    }
    // The unified verb is visible as a method on each ingestion trait.
    let ingest_fns = facts.iter().filter(|(k, n)| *k == "fn" && n == "ingest").count();
    assert!(ingest_fns >= 3, "expected ingest on all three traits: {facts:?}");
}

#[test]
fn golden_one_heavy_hitter() {
    let src = repo_file("crates/core/src/one_heavy_hitter.rs");
    let facts = facts(&src);
    assert!(facts.iter().any(|(k, n)| *k == "struct" && n == "OneHeavyHitter"), "{facts:?}");
    for impl_name in [
        "Snapshot for OneHeavyHitter",
        "Mergeable for OneHeavyHitter",
        "SpaceUsage for OneHeavyHitter",
    ] {
        assert!(
            facts.iter().any(|(k, n)| *k == "impl" && n == impl_name),
            "impl `{impl_name}` not found: {facts:?}"
        );
    }
    // The L11 contract method parses as a child of an inherent impl.
    assert!(
        facts.iter().any(|(k, n)| *k == "fn" && n == "state_digest"),
        "state_digest should be visible to the parser: {facts:?}"
    );
}

#[test]
fn golden_sketch_reservoir() {
    let src = repo_file("crates/sketch/src/reservoir.rs");
    let facts = facts(&src);
    assert!(facts.iter().any(|(k, n)| *k == "struct" && n == "Reservoir"), "{facts:?}");
    assert!(
        facts.iter().any(|(k, n)| *k == "impl" && n.starts_with("SpaceUsage for")),
        "{facts:?}"
    );
    for method in ["items", "seen", "capacity", "is_full", "from_parts"] {
        assert!(
            facts.iter().any(|(k, n)| *k == "fn" && n == method),
            "method `{method}` not found: {facts:?}"
        );
    }
}

/// Source fragments the property test splices together. Deliberately
/// includes unbalanced braces, half items, raw strings, nested
/// comments, and macro soup — the parser must stay total and keep the
/// tiling invariant on all of it.
const FRAGMENTS: &[&str] = &[
    "fn f(",
    ") -> u64 {",
    "}",
    "{",
    "impl Trait for Type",
    "#[cfg(test)]",
    "#[derive(Debug, Clone)]",
    "pub struct S { x: u64, }",
    "trait T: Base {",
    "mod m;",
    "use a::b::{c, d};",
    "let x = v[i] + 1;",
    "match x { Some(_) => 1, None => 2 }",
    "r#\"raw \"# almost\"#",
    "\"plain string\"",
    "/* nested /* comment */ */",
    "// line comment\n",
    "'a",
    "'x'",
    "1.5e3",
    "0xfff_usize",
    "::<>",
    ";",
    ";;",
    "macro_rules! m { () => {} }",
    "async fn g() {}",
    "unsafe { *p }",
    "where K: Ord,",
    "-> impl Iterator<Item = u64>",
    "const C: u64 = 1;",
    "enum E { A, B(u64) }",
    "#![forbid(unsafe_code)]",
    "pub(crate) fn h() {}",
    "|acc, x| acc + x",
    "if a < b { c } else { d }",
];

proptest::proptest! {
    #[test]
    fn prop_every_token_in_exactly_one_span(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let tokens = lex(&src);
        let items = parse(&tokens);
        // check_tiling asserts precisely "each token index in [0, n) is
        // covered by exactly one top-level span, in order".
        proptest::prop_assert!(
            check_tiling(&items, tokens.len()).is_ok(),
            "tiling violated for source: {src:?}"
        );
    }
}
