//! One intentional-violation fixture per lint class, plus a clean
//! fixture asserting the pass is quiet on conforming code. These pin
//! the *detection* behaviour: if a lint regresses into silence, these
//! fail before CI ever depends on `--deny`.

use hindex_analysis::workspace::Workspace;
use hindex_analysis::run_lints;

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .collect(),
    )
}

/// A conforming library file: checked helpers, no panics, forbid at
/// the root, seeded randomness only.
const CLEAN_ROOT: &str = r#"
//! Crate docs.
#![forbid(unsafe_code)]

/// Canonicalise via the checked helper.
pub fn residue(delta: i64) -> u64 {
    hindex_hashing::from_i64(delta)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
        if false {
            panic!("fine in tests");
        }
    }
}
"#;

#[test]
fn clean_fixture_is_quiet() {
    let findings = run_lints(&ws(&[("crates/sketch/src/lib.rs", CLEAN_ROOT)]), false);
    assert!(
        findings.is_empty(),
        "clean fixture should produce no findings, got: {findings:?}"
    );
}

#[test]
fn l1_catches_raw_field_arithmetic() {
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn residue(delta: i64) -> u64 {\n\
                   delta.rem_euclid(MERSENNE_P as i64) as u64\n\
               }\n\
               pub fn product(a: u64, b: u64) -> u64 {\n\
                   (a * b) % MERSENNE_P\n\
               }\n";
    let findings = run_lints(&ws(&[("crates/sketch/src/lib.rs", bad)]), false);
    let l1: Vec<_> = findings.iter().filter(|f| f.lint == "L1").collect();
    assert_eq!(l1.len(), 2, "both lines lint: {findings:?}");
    assert_eq!(l1[0].line, 3);
    assert_eq!(l1[1].line, 6);
    // Same pattern inside hashing's field module is the one sanctioned home.
    let home = run_lints(
        &ws(&[("crates/hashing/src/field.rs", bad)]),
        false,
    );
    assert!(home.iter().all(|f| f.lint != "L1"));
}

#[test]
fn l2_catches_estimator_without_space_contract() {
    // `Bad` implements an estimator trait but no SpaceUsage and is not
    // referenced from the contract suite; `Good` has both.
    let src = "#![forbid(unsafe_code)]\n\
               impl AggregateEstimator for Bad { }\n\
               impl CashRegisterEstimator for Good { }\n\
               impl SpaceUsage for Good { }\n";
    let suite = "fn covers() { let _ = Good::default(); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/core/src/lib.rs", src),
            ("tests/space_contracts.rs", suite),
        ]),
        false,
    );
    let l2: Vec<_> = findings.iter().filter(|f| f.lint == "L2").collect();
    assert_eq!(l2.len(), 2, "missing impl + missing test ref: {findings:?}");
    assert!(l2.iter().all(|f| f.message.contains("Bad")));
    // --quick skips the cross-file pass entirely.
    let quick = run_lints(&ws(&[("crates/core/src/lib.rs", src)]), true);
    assert!(quick.iter().all(|f| f.lint != "L2"));
}

#[test]
fn l3_catches_panic_paths_in_library_code() {
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn f(x: Option<u64>) -> u64 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"state out of sync\");\n\
                   if a != b { unreachable!() }\n\
                   a\n\
               }\n";
    let findings = run_lints(&ws(&[("crates/engine/src/lib.rs", bad)]), false);
    let snippets: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == "L3")
        .map(|f| f.snippet.as_str())
        .collect();
    assert_eq!(
        snippets,
        vec!["unwrap()", "expect(\"state out of sync\")", "unreachable!"]
    );
    // The same code in a test, bench, or tool file is exempt.
    for exempt in ["tests/adversarial.rs", "crates/cli/src/main.rs", "benches/speed.rs"] {
        let f = run_lints(&ws(&[(exempt, bad)]), false);
        assert!(f.iter().all(|x| x.lint != "L3"), "{exempt} should be exempt");
    }
}

#[test]
fn l4_catches_missing_forbid_and_ambient_nondeterminism() {
    let no_forbid = "//! Docs only.\npub fn f() {}\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", no_forbid)]), false);
    assert!(
        findings.iter().any(|f| f.lint == "L4" && f.message.contains("forbid")),
        "{findings:?}"
    );

    let entropy = "#![forbid(unsafe_code)]\n\
                   pub fn seed() -> u64 {\n\
                       let mut rng = rand::thread_rng();\n\
                       rng.random_range(0..10)\n\
                   }\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", entropy)]), false);
    let l4: Vec<_> = findings.iter().filter(|f| f.lint == "L4").collect();
    assert_eq!(l4.len(), 1);
    assert!(l4[0].message.contains("thread_rng"));

    // Vendored shims and non-library crates are exempt from the ban.
    let f = run_lints(&ws(&[("crates/rand/src/lib.rs", entropy)]), false);
    assert!(f.is_empty());
}

#[test]
fn l5_catches_untested_mergeable_impl() {
    let src = "#![forbid(unsafe_code)]\n\
               impl Mergeable for Tested { }\n\
               impl Mergeable for Untested { }\n";
    let suite = "fn merge_round_trip() { let _ = Tested::default(); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/core/src/lib.rs", src),
            ("tests/merge_semantics.rs", suite),
        ]),
        false,
    );
    let l5: Vec<_> = findings.iter().filter(|f| f.lint == "L5").collect();
    assert_eq!(l5.len(), 1, "{findings:?}");
    assert!(l5[0].message.contains("Untested"));
}

#[test]
fn l6_catches_unpersistable_and_untested_mergeable_impls() {
    // `Covered` is fully compliant; `NoSnapshot` merges but cannot be
    // checkpointed; `NoTest` is persistable but unexercised.
    let src = "#![forbid(unsafe_code)]\n\
               impl Mergeable for Covered { }\n\
               impl Snapshot for Covered { }\n\
               impl Mergeable for NoSnapshot { }\n\
               impl Mergeable for NoTest { }\n\
               impl Snapshot for NoTest { }\n";
    let suite = "fn roundtrip() { let _ = Covered::default(); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/core/src/lib.rs", src),
            ("tests/merge_semantics.rs", "fn m() { Covered::default(); NoSnapshot::default(); NoTest::default(); }\n"),
            ("tests/snapshot_roundtrip.rs", suite),
        ]),
        false,
    );
    let l6: Vec<_> = findings.iter().filter(|f| f.lint == "L6").collect();
    assert_eq!(l6.len(), 3, "{findings:?}");
    assert!(l6.iter().any(|f| f.message.contains("NoSnapshot") && f.message.contains("no `Snapshot` impl")));
    assert!(l6.iter().any(|f| f.message.contains("NoSnapshot") && f.message.contains("not referenced")));
    assert!(l6.iter().any(|f| f.message.contains("NoTest") && f.message.contains("not referenced")));

    // Cross-file lint: skipped under --quick.
    let quick = run_lints(
        &ws(&[("crates/core/src/lib.rs", src)]),
        true,
    );
    assert!(quick.iter().all(|f| f.lint != "L6"), "{quick:?}");
}

#[test]
fn baseline_keys_silence_exact_findings_only() {
    use hindex_analysis::baseline::{apply, Baseline};
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn f(x: Option<u64>) -> u64 { x.expect(\"sync\") }\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", bad)]), false);
    assert_eq!(findings.len(), 1);
    let key = findings[0].key();
    assert_eq!(key, "L3|crates/core/src/lib.rs|expect(\"sync\")");

    let silenced = apply(&Baseline::parse(&format!("{key}  # audited")), findings.clone());
    assert!(silenced.new.is_empty());
    assert_eq!(silenced.silenced, 1);
    assert!(silenced.stale.is_empty());
    assert!(silenced.unjustified.is_empty());

    let other = apply(&Baseline::parse("L3|other.rs|unwrap()  # elsewhere"), findings);
    assert_eq!(other.new.len(), 1);
    assert_eq!(other.stale.len(), 1);
}
