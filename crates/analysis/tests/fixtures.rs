//! One intentional-violation fixture per lint class, plus a clean
//! fixture asserting the pass is quiet on conforming code. These pin
//! the *detection* behaviour: if a lint regresses into silence, these
//! fail before CI ever depends on `--deny`.

use hindex_analysis::workspace::Workspace;
use hindex_analysis::run_lints;

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .collect(),
    )
}

/// A conforming library file: checked helpers, no panics, forbid at
/// the root, seeded randomness only.
const CLEAN_ROOT: &str = r#"
//! Crate docs.
#![forbid(unsafe_code)]

/// Canonicalise via the checked helper.
pub fn residue(delta: i64) -> u64 {
    hindex_hashing::from_i64(delta)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
        if false {
            panic!("fine in tests");
        }
    }
}
"#;

#[test]
fn clean_fixture_is_quiet() {
    let findings = run_lints(&ws(&[("crates/sketch/src/lib.rs", CLEAN_ROOT)]), false);
    assert!(
        findings.is_empty(),
        "clean fixture should produce no findings, got: {findings:?}"
    );
}

#[test]
fn l1_catches_raw_field_arithmetic() {
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn residue(delta: i64) -> u64 {\n\
                   delta.rem_euclid(MERSENNE_P as i64) as u64\n\
               }\n\
               pub fn product(a: u64, b: u64) -> u64 {\n\
                   (a * b) % MERSENNE_P\n\
               }\n";
    let findings = run_lints(&ws(&[("crates/sketch/src/lib.rs", bad)]), false);
    let l1: Vec<_> = findings.iter().filter(|f| f.lint == "L1").collect();
    assert_eq!(l1.len(), 2, "both lines lint: {findings:?}");
    assert_eq!(l1[0].line, 3);
    assert_eq!(l1[1].line, 6);
    // Same pattern inside hashing's field module is the one sanctioned home.
    let home = run_lints(
        &ws(&[("crates/hashing/src/field.rs", bad)]),
        false,
    );
    assert!(home.iter().all(|f| f.lint != "L1"));
}

#[test]
fn l2_catches_estimator_without_space_contract() {
    // `Bad` implements an estimator trait but no SpaceUsage and is not
    // referenced from the contract suite; `Good` has both.
    let src = "#![forbid(unsafe_code)]\n\
               impl AggregateEstimator for Bad { }\n\
               impl CashRegisterEstimator for Good { }\n\
               impl SpaceUsage for Good { }\n";
    let suite = "fn covers() { let _ = Good::default(); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/core/src/lib.rs", src),
            ("tests/space_contracts.rs", suite),
        ]),
        false,
    );
    let l2: Vec<_> = findings.iter().filter(|f| f.lint == "L2").collect();
    assert_eq!(l2.len(), 2, "missing impl + missing test ref: {findings:?}");
    assert!(l2.iter().all(|f| f.message.contains("Bad")));
    // --quick skips the cross-file pass entirely.
    let quick = run_lints(&ws(&[("crates/core/src/lib.rs", src)]), true);
    assert!(quick.iter().all(|f| f.lint != "L2"));
}

#[test]
fn l9_catches_panic_paths_in_library_code() {
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn f(x: Option<u64>) -> u64 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"state out of sync\");\n\
                   if a != b { unreachable!() }\n\
                   a\n\
               }\n";
    let findings = run_lints(&ws(&[("crates/engine/src/lib.rs", bad)]), false);
    let snippets: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == "L9")
        .map(|f| f.snippet.as_str())
        .collect();
    assert_eq!(
        snippets,
        vec!["unwrap()", "expect(\"state out of sync\")", "unreachable!"]
    );
    // The same code in a test, bench, or tool file is exempt.
    for exempt in ["tests/adversarial.rs", "crates/cli/src/main.rs", "benches/speed.rs"] {
        let f = run_lints(&ws(&[(exempt, bad)]), false);
        assert!(f.iter().all(|x| x.lint != "L9"), "{exempt} should be exempt");
    }
}

#[test]
fn l9_traces_panic_through_two_deep_call_chain() {
    // The seeded violation the issue asks for: an entry point whose
    // panic sits two calls away — only a call-graph walk can tie the
    // `.unwrap()` back to `ingest`.
    let src = "#![forbid(unsafe_code)]\n\
               pub struct Sketch { level: u32 }\n\
               impl Sketch {\n\
                   pub fn ingest(&mut self, v: u64) { self.place(v); }\n\
                   fn place(&mut self, v: u64) { let _ = slot(v); }\n\
               }\n\
               fn slot(v: u64) -> u64 { pick(v).unwrap() }\n\
               fn pick(v: u64) -> Option<u64> { v.checked_add(1) }\n";
    let findings = run_lints(&ws(&[("crates/sketch/src/deep.rs", src)]), false);
    let l9: Vec<_> = findings.iter().filter(|f| f.lint == "L9").collect();
    assert_eq!(l9.len(), 1, "{findings:?}");
    assert!(
        l9[0].message.contains("ingest -> place -> slot"),
        "diagnostic should carry the call chain: {:?}",
        l9[0].message
    );
}

#[test]
fn l4_catches_missing_forbid_and_ambient_nondeterminism() {
    let no_forbid = "//! Docs only.\npub fn f() {}\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", no_forbid)]), false);
    assert!(
        findings.iter().any(|f| f.lint == "L4" && f.message.contains("forbid")),
        "{findings:?}"
    );

    let entropy = "#![forbid(unsafe_code)]\n\
                   pub fn seed() -> u64 {\n\
                       let mut rng = rand::thread_rng();\n\
                       rng.random_range(0..10)\n\
                   }\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", entropy)]), false);
    let l4: Vec<_> = findings.iter().filter(|f| f.lint == "L4").collect();
    assert_eq!(l4.len(), 1);
    assert!(l4[0].message.contains("thread_rng"));

    // Vendored shims and non-library crates are exempt from the ban.
    let f = run_lints(&ws(&[("crates/rand/src/lib.rs", entropy)]), false);
    assert!(f.is_empty());
}

#[test]
fn l11_catches_cross_file_coverage_gaps() {
    // `Covered` is fully compliant (Snapshot impl, gated digest, both
    // suites); `NoSnapshot` merges but cannot be checkpointed and has
    // no digest; `NoTest` is persistable + digestible but absent from
    // the round-trip suite — a gap only a cross-file view can see.
    let src = "#![forbid(unsafe_code)]\n\
               impl Mergeable for Covered { }\n\
               impl Snapshot for Covered { }\n\
               impl Covered {\n\
                   #[cfg(feature = \"debug_invariants\")]\n\
                   pub fn state_digest(&self) -> u64 { 0 }\n\
               }\n\
               impl Mergeable for NoSnapshot { }\n\
               impl Mergeable for NoTest { }\n\
               impl Snapshot for NoTest { }\n\
               impl NoTest {\n\
                   #[cfg(feature = \"debug_invariants\")]\n\
                   pub fn state_digest(&self) -> u64 { 0 }\n\
               }\n";
    let suite = "fn roundtrip() { let _ = Covered::default(); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/core/src/lib.rs", src),
            ("tests/merge_semantics.rs", "fn m() { Covered::default(); NoSnapshot::default(); NoTest::default(); }\n"),
            ("tests/snapshot_roundtrip.rs", suite),
        ]),
        false,
    );
    let l11: Vec<_> = findings.iter().filter(|f| f.lint == "L11").collect();
    assert_eq!(l11.len(), 4, "{findings:?}");
    assert!(l11.iter().any(|f| f.message.contains("NoSnapshot") && f.message.contains("no `Snapshot` impl")));
    assert!(l11.iter().any(|f| f.message.contains("NoSnapshot") && f.message.contains("state_digest")));
    assert!(l11.iter().any(|f| f.message.contains("NoSnapshot") && f.message.contains("not referenced")));
    assert!(l11.iter().any(|f| f.message.contains("NoTest") && f.message.contains("not referenced")));

    // Cross-file lint: skipped under --quick.
    let quick = run_lints(
        &ws(&[("crates/core/src/lib.rs", src)]),
        true,
    );
    assert!(quick.iter().all(|f| f.lint != "L11"), "{quick:?}");
}

#[test]
fn l10_catches_raw_arithmetic_on_stream_values() {
    let src = "#![forbid(unsafe_code)]\n\
               pub struct Acc { total: u64 }\n\
               impl Acc {\n\
                   pub fn ingest(&mut self, delta: u64) {\n\
                       self.total = self.total + delta;\n\
                   }\n\
               }\n";
    let findings = run_lints(&ws(&[("crates/core/src/acc.rs", src)]), false);
    let l10: Vec<_> = findings.iter().filter(|f| f.lint == "L10").collect();
    assert_eq!(l10.len(), 1, "{findings:?}");
    assert_eq!(l10[0].line, 5);

    // The checked spelling of the same update is quiet.
    let good = src.replace(
        "self.total + delta",
        "self.total.saturating_add(delta)",
    );
    let findings = run_lints(&ws(&[("crates/core/src/acc.rs", good.as_str())]), false);
    assert!(findings.iter().all(|f| f.lint != "L10"), "{findings:?}");
}

#[test]
fn l12_catches_undeclared_and_unforwarded_gate_features() {
    let manifest_no_feature = "[package]\nname = \"hindex-stream\"\n";
    let src = "#![forbid(unsafe_code)]\n\
               pub fn advance() { debug_invariant!(true, \"tick\"); }\n";
    let findings = run_lints(
        &ws(&[
            ("crates/stream/Cargo.toml", manifest_no_feature),
            ("crates/stream/src/lib.rs", src),
        ]),
        false,
    );
    let l12: Vec<_> = findings.iter().filter(|f| f.lint == "L12").collect();
    assert_eq!(l12.len(), 1, "{findings:?}");
    assert_eq!(l12[0].file, "crates/stream/Cargo.toml");

    // Declaring the feature but not forwarding it to a declaring
    // dependency is the second failure mode.
    let findings = run_lints(
        &ws(&[
            (
                "crates/stream/Cargo.toml",
                "[package]\nname = \"hindex-stream\"\n[features]\ndebug_invariants = []\n",
            ),
            (
                "crates/stream/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 use hindex_common::debug_invariant;\n\
                 pub fn advance() { debug_invariant!(true, \"tick\"); }\n",
            ),
            (
                "crates/common/Cargo.toml",
                "[package]\nname = \"hindex-common\"\n[features]\ndebug_invariants = []\n",
            ),
            ("crates/common/src/lib.rs", "#![forbid(unsafe_code)]\n"),
        ]),
        false,
    );
    let l12: Vec<_> = findings.iter().filter(|f| f.lint == "L12").collect();
    assert_eq!(l12.len(), 1, "{findings:?}");
    assert!(l12[0].message.contains("does not forward"), "{findings:?}");
}

#[test]
fn baseline_keys_silence_exact_findings_only() {
    use hindex_analysis::baseline::{apply, Baseline};
    let bad = "#![forbid(unsafe_code)]\n\
               pub fn f(x: Option<u64>) -> u64 { x.expect(\"sync\") }\n";
    let findings = run_lints(&ws(&[("crates/core/src/lib.rs", bad)]), false);
    assert_eq!(findings.len(), 1);
    let key = findings[0].key();
    assert_eq!(key, "L9|crates/core/src/lib.rs|expect(\"sync\")");

    let silenced = apply(&Baseline::parse(&format!("{key}  # audited")), findings.clone());
    assert!(silenced.new.is_empty());
    assert_eq!(silenced.silenced, 1);
    assert!(silenced.stale.is_empty());
    assert!(silenced.unjustified.is_empty());

    let other = apply(&Baseline::parse("L3|other.rs|unwrap()  # elsewhere"), findings);
    assert_eq!(other.new.len(), 1);
    assert_eq!(other.stale.len(), 1);
}
