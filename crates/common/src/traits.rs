//! Estimator traits implemented by every streaming algorithm in the
//! workspace.
//!
//! The paper distinguishes two input models (§2.3):
//!
//! * **aggregate** — the stream delivers each coordinate of the
//!   underlying vector `V` once, as a finished total
//!   ([`AggregateEstimator`]);
//! * **cash register** — the stream delivers non-negative *updates*
//!   `(i, z)` meaning `V[i] += z` ([`CashRegisterEstimator`]).
//!
//! [`SpaceUsage`] reports space in the paper's unit — machine *words* —
//! so experiments can compare measured space against the theorem bounds
//! directly rather than against allocator noise.

/// Streaming estimator over the aggregate model: one finished total per
/// publication.
pub trait AggregateEstimator {
    /// Feeds one aggregate value (e.g. the final citation count of one
    /// paper).
    fn push(&mut self, value: u64);

    /// Current estimate of the H-index of everything pushed so far.
    fn estimate(&self) -> u64;

    /// Convenience: consume an iterator of values.
    fn extend_from<I: IntoIterator<Item = u64>>(&mut self, values: I)
    where
        Self: Sized,
    {
        for v in values {
            self.push(v);
        }
    }
}

/// Streaming estimator over the cash-register model: updates `(index,
/// delta)` to an underlying vector, `delta ≥ 1`.
pub trait CashRegisterEstimator {
    /// Applies the update `V[index] += delta`.
    fn update(&mut self, index: u64, delta: u64);

    /// Current estimate of `h*(V)`.
    fn estimate(&self) -> u64;
}

/// Space accounting in machine words, the unit the paper's theorems are
/// stated in (each word is `log n` bits).
pub trait SpaceUsage {
    /// Number of words of state currently held: counters, stored sample
    /// values/indices, sketch cells. Fixed-size configuration scalars
    /// (ε, thresholds derivable from ε) are excluded, matching how the
    /// paper counts.
    fn space_words(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal conforming implementation to exercise defaults.
    struct CountAtLeast {
        bar: u64,
        count: u64,
    }

    impl AggregateEstimator for CountAtLeast {
        fn push(&mut self, value: u64) {
            if value >= self.bar {
                self.count += 1;
            }
        }
        fn estimate(&self) -> u64 {
            self.count
        }
    }

    #[test]
    fn extend_from_drains_iterator() {
        let mut c = CountAtLeast { bar: 3, count: 0 };
        c.extend_from([1u64, 3, 5, 2, 9]);
        assert_eq!(c.estimate(), 3);
    }
}
