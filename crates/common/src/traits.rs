//! Estimator traits implemented by every streaming algorithm in the
//! workspace.
//!
//! The paper distinguishes two input models (§2.3):
//!
//! * **aggregate** — the stream delivers each coordinate of the
//!   underlying vector `V` once, as a finished total
//!   ([`AggregateEstimator`]);
//! * **cash register** — the stream delivers non-negative *updates*
//!   `(i, z)` meaning `V[i] += z` ([`CashRegisterEstimator`]).
//!
//! [`SpaceUsage`] reports space in the paper's unit — machine *words* —
//! so experiments can compare measured space against the theorem bounds
//! directly rather than against allocator noise.
//!
//! # The unified ingest verb
//!
//! Every estimator consumes its stream through **`ingest`** (one item)
//! and **`ingest_batch`** (a slice), whatever the input model:
//!
//! | trait                     | `ingest` signature          |
//! |---------------------------|-----------------------------|
//! | [`AggregateEstimator`]    | `ingest(value)`             |
//! | [`CashRegisterEstimator`] | `ingest(index, delta: u64)` |
//! | [`TurnstileEstimator`]    | `ingest(index, delta: i64)` |
//!
//! and every estimator answers through [`Estimate::estimate`], the one
//! query verb shared by all three traits (their supertrait). The
//! historical verbs (`push`/`update`/`push_batch`/`update_batch`)
//! survived one release as `#[deprecated]` delegating shims and are now
//! gone; the `ingest` spelling is the only one, and analysis lint L8
//! (see `docs/ANALYSIS.md`) keeps the old verbs from creeping back in.
//!
//! Two additions support the sharded ingestion engine
//! (`hindex-engine`):
//!
//! * batched ingestion (`ingest_batch`) — default implementations loop
//!   over the single-item methods, and estimators override them where a
//!   batch admits a faster path (e.g. coalescing duplicate indices
//!   before touching every sampler);
//! * [`Mergeable`], the contract that two independently-fed estimators
//!   built from **identical randomness** can be combined into the
//!   estimator of the concatenated stream. Every linear sketch in the
//!   workspace satisfies it; the engine relies on it to answer anytime
//!   queries across shards.
//!
//! [`EstimatorParams`] unifies construction: a parameter struct knows
//! how to `build` its estimator from a caller-supplied RNG, which is
//! what lets the engine clone one seeded prototype per shard.

use rand::Rng;

/// The one query verb every estimator answers: the current estimate of
/// the quantity it tracks (H-index, g-index, window count, …).
///
/// Supertrait of all three ingestion traits, so generic plumbing — the
/// sharded engine's [`QueryReport`-style](crate) boundaries in
/// particular — can ask any estimator for its answer without knowing
/// the input model.
pub trait Estimate {
    /// Current estimate over everything ingested so far.
    fn estimate(&self) -> u64;
}

/// Streaming estimator over the aggregate model: one finished total per
/// publication.
pub trait AggregateEstimator: Estimate {
    /// Feeds one aggregate value (e.g. the final citation count of one
    /// paper).
    fn ingest(&mut self, value: u64);

    /// Feeds a batch of aggregate values. Semantically identical to
    /// ingesting each value in order; implementations may override for
    /// a faster batch path.
    fn ingest_batch(&mut self, values: &[u64]) {
        for &v in values {
            self.ingest(v);
        }
    }

    /// Convenience: consume an iterator of values.
    fn extend_from<I: IntoIterator<Item = u64>>(&mut self, values: I)
    where
        Self: Sized,
    {
        for v in values {
            self.ingest(v);
        }
    }
}

/// Streaming estimator over the cash-register model: updates `(index,
/// delta)` to an underlying vector, `delta ≥ 1`.
pub trait CashRegisterEstimator: Estimate {
    /// Applies the update `V[index] += delta`.
    fn ingest(&mut self, index: u64, delta: u64);

    /// Applies a batch of updates. Semantically identical to applying
    /// each update in order; implementations may override for a faster
    /// batch path (cash-register state is order-insensitive, so
    /// overrides are free to coalesce duplicate indices).
    fn ingest_batch(&mut self, updates: &[(u64, u64)]) {
        for &(i, z) in updates {
            self.ingest(i, z);
        }
    }

    /// Bank-batching telemetry accumulated by this estimator's ingest
    /// kernel, if it exposes any (see
    /// [`BankCounters`](crate::telemetry::BankCounters)). The engine
    /// surfaces this through the observability layer after merging
    /// shards; estimators without a bank kernel report `None`.
    fn bank_counters(&self) -> Option<crate::telemetry::BankCounters> {
        None
    }
}

/// Streaming estimator over the turnstile model: signed updates
/// `(index, delta)` with `delta` possibly negative (retractions).
///
/// Strictly more general than [`CashRegisterEstimator`]; it gets its
/// own trait (rather than a widening of that one) because the paper's
/// cash-register algorithms are *not* deletion-tolerant — the type
/// system should refuse to route a stream with retractions into them.
pub trait TurnstileEstimator: Estimate {
    /// Applies the update `V[index] += delta` (`delta` may be
    /// negative).
    fn ingest(&mut self, index: u64, delta: i64);

    /// Applies a batch of updates. Semantically identical to applying
    /// each update in order; linear-sketch implementations override
    /// with coalescing/batched-kernel paths that stay state-identical
    /// (exact cancellation makes the state order-insensitive).
    fn ingest_batch(&mut self, updates: &[(u64, i64)]) {
        for &(i, d) in updates {
            self.ingest(i, d);
        }
    }
}

/// Estimators whose states combine: after `a.merge(&b)`, `a` is exactly
/// (or distributionally, see below) the estimator that saw `a`'s stream
/// followed by `b`'s stream.
///
/// Both operands must have been built with the **same parameters and
/// the same randomness** (same hash functions, same grid) — in
/// practice, by cloning one seeded prototype. For linear sketches
/// (sparse recovery, ℓ₀-samplers, BJKST, count-min, exponential
/// histograms) the merged state is *bit-identical* to single-stream
/// ingestion. Sampling-based structures (reservoirs inside the heavy
/// hitters machinery) merge to the correct *distribution* rather than a
/// bit-identical state, which is documented on the implementation.
pub trait Mergeable {
    /// Folds `other`'s state into `self`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the operands' parameters are
    /// incompatible (different grid, different width), since silently
    /// combining them would corrupt estimates.
    fn merge(&mut self, other: &Self);
}

/// Unified construction: a parameter object that builds its estimator
/// from a caller-supplied RNG.
///
/// This is the seam the sharded engine builds on: construct one
/// prototype with a seeded RNG, clone it per shard, and the shards
/// share randomness — the precondition of [`Mergeable`].
pub trait EstimatorParams {
    /// The estimator this parameter set configures.
    type Output;

    /// Draws whatever randomness the estimator needs from `rng` and
    /// returns the configured estimator.
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

/// Space accounting in machine words, the unit the paper's theorems are
/// stated in (each word is `log n` bits).
pub trait SpaceUsage {
    /// Number of words of state currently held: counters, stored sample
    /// values/indices, sketch cells. Fixed-size configuration scalars
    /// (ε, thresholds derivable from ε) are excluded, matching how the
    /// paper counts.
    fn space_words(&self) -> usize;

    /// Words of **derived scratch**: lookup tables and working buffers
    /// that are recomputable from the randomness already counted in
    /// [`SpaceUsage::space_words`] (windowed power ladders, decode
    /// scratch). These trade memory for cycles without adding
    /// information, so the paper's random-words bounds — and every
    /// space-contract test — are stated over `space_words` alone;
    /// scratch is reported on this separate channel so deployments can
    /// still see the true resident footprint
    /// (`space_words() + scratch_words()`). Policy:
    /// `docs/ALGORITHMS.md`, "Space accounting for derived scratch".
    fn scratch_words(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal conforming implementation to exercise defaults.
    struct CountAtLeast {
        bar: u64,
        count: u64,
    }

    impl Estimate for CountAtLeast {
        fn estimate(&self) -> u64 {
            self.count
        }
    }

    impl AggregateEstimator for CountAtLeast {
        fn ingest(&mut self, value: u64) {
            if value >= self.bar {
                self.count += 1;
            }
        }
    }

    #[test]
    fn extend_from_drains_iterator() {
        let mut c = CountAtLeast { bar: 3, count: 0 };
        c.extend_from([1u64, 3, 5, 2, 9]);
        assert_eq!(c.estimate(), 3);
    }

    #[test]
    fn ingest_batch_default_matches_ingest_loop() {
        let mut batched = CountAtLeast { bar: 3, count: 0 };
        let mut looped = CountAtLeast { bar: 3, count: 0 };
        let values = [1u64, 3, 5, 2, 9, 3];
        batched.ingest_batch(&values);
        for &v in &values {
            looped.ingest(v);
        }
        assert_eq!(batched.estimate(), looped.estimate());
    }

    struct SumRegister {
        total: u64,
    }

    impl Estimate for SumRegister {
        fn estimate(&self) -> u64 {
            self.total
        }
    }

    impl CashRegisterEstimator for SumRegister {
        fn ingest(&mut self, _index: u64, delta: u64) {
            self.total += delta;
        }
    }

    #[test]
    fn ingest_batch_default_matches_update_loop() {
        let mut batched = SumRegister { total: 0 };
        let mut looped = SumRegister { total: 0 };
        let updates = [(1u64, 2u64), (7, 1), (1, 3)];
        batched.ingest_batch(&updates);
        for &(i, z) in &updates {
            looped.ingest(i, z);
        }
        assert_eq!(batched.estimate(), looped.estimate());
    }

    /// A tiny signed accumulator exercises the turnstile defaults.
    struct SignedSum {
        total: i64,
    }

    impl Estimate for SignedSum {
        fn estimate(&self) -> u64 {
            self.total.max(0) as u64
        }
    }

    impl TurnstileEstimator for SignedSum {
        fn ingest(&mut self, _index: u64, delta: i64) {
            self.total += delta;
        }
    }

    #[test]
    fn turnstile_ingest_batch_matches_loop() {
        let mut batched = SignedSum { total: 0 };
        batched.ingest_batch(&[(1, 5), (2, 3), (3, -4)]);
        let mut looped = SignedSum { total: 0 };
        for (i, d) in [(1, 5), (2, 3), (3, -4)] {
            looped.ingest(i, d);
        }
        assert_eq!(batched.estimate(), looped.estimate());
        assert_eq!(batched.estimate(), 4);
    }
}
