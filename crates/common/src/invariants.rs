//! The `debug_invariant!` assertion layer.
//!
//! Sketch states carry algebraic invariants the type system cannot
//! express: field elements must stay canonical (`< p`), exponential
//! histogram suffix counters must be non-increasing, a 1-sparse cell's
//! fingerprint must equal the polynomial evaluated at its support. The
//! [`debug_invariant!`] macro lets hot-path code assert those facts
//! *without* paying for them in release or even ordinary debug builds:
//! the condition tokens are compiled out entirely unless the calling
//! crate enables its `debug_invariants` cargo feature.
//!
//! Each workspace crate that uses the macro declares its own
//! `debug_invariants` feature (cargo features are resolved in the crate
//! where the macro *expands*, not where it is defined) and forwards to
//! its dependencies' features so one flag arms the whole stack:
//!
//! ```text
//! cargo test -p hindex --features debug_invariants
//! ```
//!
//! Invariants that need non-trivial setup (temporaries, loops) should
//! instead live in a `#[cfg(feature = "debug_invariants")]` helper
//! function so nothing is bound-but-unused when the feature is off.

/// Asserts an internal invariant, compiled out unless the **calling**
/// crate's `debug_invariants` feature is enabled.
///
/// Usage is identical to [`assert!`]:
///
/// ```
/// # use hindex_common::debug_invariant;
/// let residue = 5u64;
/// debug_invariant!(residue < (1 << 61) - 1, "non-canonical: {residue}");
/// ```
///
/// Unlike [`debug_assert!`], this is off even in debug builds by
/// default — the invariants guarded here are expensive (full-state
/// scans, reference recomputation) and exist for the dedicated
/// invariant-testing CI stage, not for every test run.
#[macro_export]
macro_rules! debug_invariant {
    ($($arg:tt)*) => {
        #[cfg(feature = "debug_invariants")]
        {
            assert!($($arg)*);
        }
    };
}
