//! Validated parameter newtypes.
//!
//! Every algorithm in the paper is parameterized by an accuracy `ε` and
//! most by a failure probability `δ`, both constrained to `(0, 1)`.
//! Constructing them through [`Epsilon`] and [`Delta`] moves that
//! validation to the edge of the API, so the algorithms themselves never
//! have to re-check.

use crate::error::{Error, Result};

/// Accuracy parameter `ε ∈ (0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps an accuracy parameter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < value < 1` and
    /// `value` is finite.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 && value < 1.0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "epsilon",
                format!("must lie in (0, 1), got {value}"),
            ))
        }
    }

    /// The raw value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `1 + ε`, the base of the paper's exponential threshold grids.
    #[must_use]
    pub fn base(self) -> f64 {
        1.0 + self.0
    }

    /// The paper's proof device of running an algorithm at `ε/3` so the
    /// compounded error telescopes back to `ε` (Theorem 6).
    #[must_use]
    pub fn third(self) -> Epsilon {
        Epsilon(self.0 / 3.0)
    }
}

/// Failure probability `δ ∈ (0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Delta(f64);

impl Delta {
    /// Validates and wraps a failure probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < value < 1` and
    /// `value` is finite.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 && value < 1.0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "delta",
                format!("must lie in (0, 1), got {value}"),
            ))
        }
    }

    /// The raw value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `ln(1/δ)`, the ubiquitous repetition factor.
    #[must_use]
    pub fn ln_inv(self) -> f64 {
        (1.0 / self.0).ln()
    }

    /// Splits the failure budget across `k` independent components via a
    /// union bound: each component gets `δ/k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn split(self, k: usize) -> Delta {
        assert!(k > 0, "cannot split a failure budget zero ways");
        Delta(self.0 / k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_accepts_open_interval() {
        assert!(Epsilon::new(0.5).is_ok());
        assert!(Epsilon::new(1e-9).is_ok());
        assert!(Epsilon::new(0.999_999).is_ok());
    }

    #[test]
    fn epsilon_rejects_boundary_and_garbage() {
        for bad in [0.0, 1.0, -0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Epsilon::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn delta_rejects_boundary_and_garbage() {
        for bad in [0.0, 1.0, -0.1, 2.0, f64::NAN] {
            assert!(Delta::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn base_and_third() {
        let e = Epsilon::new(0.3).unwrap();
        assert!((e.base() - 1.3).abs() < 1e-12);
        assert!((e.third().get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delta_helpers() {
        let d = Delta::new(0.01).unwrap();
        assert!((d.ln_inv() - 100f64.ln()).abs() < 1e-12);
        assert!((d.split(10).get() - 0.001).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn split_zero_panics() {
        let _ = Delta::new(0.1).unwrap().split(0);
    }
}
