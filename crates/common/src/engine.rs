//! The unified engine abstraction every ingestion pipeline implements.
//!
//! The workspace grows its engines as *policy layers* over one shared
//! shard runtime (see `hindex-engine`): the plain [`ShardedEngine`]
//! fails hard on worker death, the [`SupervisedEngine`] heals through
//! it. Both speak the same verb set, captured here as the [`Engine`]
//! trait so drivers (CLI, benches, tests) can be written once and
//! handed either policy.
//!
//! The trait lives in `hindex-common` — below the engine crate — so it
//! can be named by any crate without a dependency on the engine
//! implementation. Engine-specific vocabulary (errors, checkpoints,
//! reports) enters through associated types.
//!
//! [`ShardedEngine`]: ../hindex_engine/struct.ShardedEngine.html
//! [`SupervisedEngine`]: ../hindex_engine/struct.SupervisedEngine.html

use crate::approx::Guarantee;

/// Result of an explicit lossy query over an engine with dead shards.
#[derive(Debug, Clone)]
pub struct Degraded<E> {
    /// The merge of every surviving shard's state.
    pub estimator: E,
    /// Indices of the dead shards whose updates are missing from
    /// `estimator` (empty when nothing was lost).
    pub dead_shards: Vec<usize>,
}

/// The whole verb set of a sharded ingestion engine over items of type
/// `T`: feed, flush, query (strict, lossy, or reported), persist, and
/// retire. Implemented by both engine policies in `hindex-engine`.
///
/// Semantics every implementation must honour:
///
/// * **Anytime queries.** [`Engine::query`] and friends may be called
///   mid-stream; ingestion continues afterwards.
/// * **Strict vs. degraded.** `query`/`finish` refuse when data was
///   lost; the `_degraded` variants answer from the surviving shards
///   and name the dead ones.
/// * **Offset accounting.** [`Engine::stream_offset`] counts items
///   routed so far; a checkpoint taken at offset *k* resumes exactly
///   when the input is replayed from *k*.
pub trait Engine<T> {
    /// The merged estimator a query returns.
    type Output;
    /// The engine's failure type.
    type Error: std::error::Error;
    /// The serialisable frozen-engine type [`Engine::checkpoint`]
    /// produces.
    type Checkpoint;
    /// The typed query report [`Engine::report`] produces.
    type Report;

    /// Routes one item to its shard.
    fn ingest(&mut self, item: T);

    /// Ingests every item of a slice.
    fn ingest_batch(&mut self, items: &[T])
    where
        T: Copy;

    /// Sends all pending partial batches to their shards.
    fn flush(&mut self);

    /// Strict anytime query: the merge of every shard's state, or an
    /// error when any shard's updates were lost.
    ///
    /// # Errors
    ///
    /// Implementation-defined; see the implementing engine.
    fn query(&mut self) -> Result<Self::Output, Self::Error>;

    /// Lossy anytime query: merges the surviving shards and names the
    /// dead ones.
    ///
    /// # Errors
    ///
    /// Only when no shard survives.
    fn query_degraded(&mut self) -> Result<Degraded<Self::Output>, Self::Error>;

    /// Lossy anytime query packaged as a typed report for CLI/bench
    /// boundaries. `contract` is the guarantee the estimator was built
    /// under (`None` for exact baselines).
    ///
    /// # Errors
    ///
    /// Only when no shard survives.
    fn report(&mut self, contract: Option<Guarantee>) -> Result<Self::Report, Self::Error>;

    /// Freezes the engine into a serialisable checkpoint (strict: all
    /// shards must be intact).
    ///
    /// # Errors
    ///
    /// When any shard's updates were lost.
    fn checkpoint(&mut self) -> Result<Self::Checkpoint, Self::Error>;

    /// Retires the engine and returns the final merged estimator
    /// (strict).
    ///
    /// # Errors
    ///
    /// When any shard's updates were lost.
    fn finish(self) -> Result<Self::Output, Self::Error>
    where
        Self: Sized;

    /// Lossy retirement: merges the survivors and names the dead.
    ///
    /// # Errors
    ///
    /// Only when no shard survives.
    fn finish_degraded(self) -> Result<Degraded<Self::Output>, Self::Error>
    where
        Self: Sized;

    /// Items routed so far (pushed, whether or not yet ingested).
    fn stream_offset(&self) -> u64;

    /// Indices of shards whose updates are lost for good.
    fn dead_shard_indices(&self) -> Vec<usize>;
}
