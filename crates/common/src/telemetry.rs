//! Estimator-side telemetry records.
//!
//! These are *operational* counters, not sketch state: they are
//! excluded from snapshots, digests, and estimates, and exist so the
//! observability layer (`hindex-obs`) can report how well the batched
//! kernels are amortizing work. They live in `hindex-common` because
//! both the estimators (which accumulate them) and the engine/obs
//! crates (which surface them) need the type.

/// Counters accumulated by a bank-batched estimator's ingest kernel
/// (the Algorithm 6 ℓ₀-sampler bank in `hindex-core`).
///
/// All fields are totals since construction. Derived rates:
///
/// * **tile fill** — `tile_items / tile_capacity`: how full the
///   fixed-size tiles run (small trailing batches drag this down);
/// * **survivor rate** — `level_touches / (tile_items · samplers)`:
///   (item, level) touches actually dispatched per sampler-item, ≈ 2
///   for a geometric level hash (`E[top+1] = 2`) versus the ~40
///   dead-level walks the scalar path pays;
/// * **bank hash reuse** — `pow_reused / (pow_evals + pow_reused)`:
///   fraction of fingerprint-term evaluations avoided by sharing one
///   power ladder across the bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankCounters {
    /// Tiles dispatched through the bank kernel.
    pub tiles: u64,
    /// Items carried by those tiles (post-coalescing).
    pub tile_items: u64,
    /// Aggregate tile capacity (`tiles × tile size`).
    pub tile_capacity: u64,
    /// Raw updates offered to `ingest_batch` before coalescing.
    pub raw_updates: u64,
    /// (item, level) touches dispatched across the whole bank.
    pub level_touches: u64,
    /// Fingerprint-term field evaluations actually performed.
    pub pow_evals: u64,
    /// Fingerprint-term evaluations avoided via the shared bank
    /// ladder (each term is reused by every other sampler).
    pub pow_reused: u64,
}

impl BankCounters {
    /// Field-wise accumulation — used by [`crate::Mergeable`]
    /// implementations so shard-merged estimators report bank totals
    /// across the whole engine run.
    pub fn absorb(&mut self, other: &Self) {
        self.tiles += other.tiles;
        self.tile_items += other.tile_items;
        self.tile_capacity += other.tile_capacity;
        self.raw_updates += other.raw_updates;
        self.level_touches += other.level_touches;
        self.pow_evals += other.pow_evals;
        self.pow_reused += other.pow_reused;
    }

    /// Whether the bank kernel has run at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fieldwise() {
        let mut a = BankCounters {
            tiles: 1,
            tile_items: 10,
            tile_capacity: 256,
            raw_updates: 40,
            level_touches: 20,
            pow_evals: 10,
            pow_reused: 760,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.tiles, 2);
        assert_eq!(a.tile_items, 20);
        assert_eq!(a.tile_capacity, 512);
        assert_eq!(a.raw_updates, 80);
        assert_eq!(a.level_touches, 40);
        assert_eq!(a.pow_evals, 20);
        assert_eq!(a.pow_reused, 1520);
        assert!(!a.is_empty());
        assert!(BankCounters::default().is_empty());
    }
}
