//! Error type shared across the workspace.

/// Errors produced while configuring or running the streaming
/// estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter, e.g. `"epsilon"`.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A randomized sketch failed to produce an answer (probability ≤ δ
    /// by construction). Carries the component that failed.
    SketchFailed(&'static str),
    /// A heavy-hitter decode found no qualifying author.
    NoHeavyHitter,
    /// The stream violated a model assumption (e.g. an index outside the
    /// declared domain of a cash-register vector).
    ModelViolation(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::SketchFailed(which) => write!(f, "sketch `{which}` failed to decode"),
            Error::NoHeavyHitter => write!(f, "no heavy hitter found"),
            Error::ModelViolation(msg) => write!(f, "stream model violation: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Builds an [`Error::InvalidParameter`].
    #[must_use]
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::invalid("epsilon", "must lie in (0, 1)");
        assert_eq!(e.to_string(), "invalid parameter `epsilon`: must lie in (0, 1)");
        assert_eq!(
            Error::SketchFailed("l0-sampler").to_string(),
            "sketch `l0-sampler` failed to decode"
        );
        assert_eq!(Error::NoHeavyHitter.to_string(), "no heavy hitter found");
        assert!(Error::ModelViolation("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NoHeavyHitter);
    }
}
