//! Exact computation of the H-index variants discussed in §5 of the
//! paper ("Extensions and Concluding Remarks").
//!
//! These are the offline ground truths for the streaming extension
//! estimators in `hindex-core::extensions`:
//!
//! * [`g_index`] — largest `g` such that the `g` most-cited papers have
//!   at least `g²` citations in total (the "k publications with a total
//!   of k² responses" variant named in §5, known in bibliometrics as
//!   Egghe's g-index);
//! * [`alpha_index`] — largest `k` such that at least `k` papers have
//!   `≥ α·k` citations each, a thresholded generalization with
//!   `α = 1` recovering the H-index.

/// Exact g-index: largest `g` with `Σ_{top g} V ≥ g²`.
///
/// ```
/// use hindex_common::variants::g_index;
/// // prefix sums 10, 15, 18, 19 vs g² = 1, 4, 9, 16: all clear, so g = 4.
/// assert_eq!(g_index(&[10, 5, 3, 1]), 4);
/// // prefix sums 9, 14, 15, 15 vs 1, 4, 9, 16: the last fails, so g = 3.
/// assert_eq!(g_index(&[9, 5, 1, 0]), 3);
/// assert_eq!(g_index(&[]), 0);
/// ```
#[must_use]
pub fn g_index(values: &[u64]) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut sum: u128 = 0;
    let mut g = 0u64;
    for (i, &v) in sorted.iter().enumerate() {
        let rank = (i + 1) as u128;
        sum += u128::from(v);
        // The prefix sum can fall behind g² and later catch up again, so
        // scan all ranks rather than stopping at the first failure.
        if sum >= rank * rank {
            g = rank as u64;
        }
    }
    g
}

/// Exact α-index: largest `k` such that `#{v : v ≥ α·k} ≥ k`.
///
/// `alpha = 1.0` recovers the H-index. Useful ground truth for the
/// thresholded-impact streaming extension.
///
/// ```
/// use hindex_common::variants::alpha_index;
/// let v = [10u64, 10, 10, 10];
/// assert_eq!(alpha_index(&v, 1.0), 4);
/// assert_eq!(alpha_index(&v, 5.0), 2); // need k papers with ≥ 5k citations
/// ```
#[must_use]
pub fn alpha_index(values: &[u64], alpha: f64) -> u64 {
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    let n = values.len() as u64;
    let mut best = 0u64;
    for k in 1..=n {
        let bar = (alpha * k as f64).ceil() as u64;
        let count = values.iter().filter(|&&v| v >= bar).count() as u64;
        if count >= k {
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hindex::h_index;

    #[test]
    fn g_index_examples() {
        assert_eq!(g_index(&[10, 5, 3, 1]), 4);
        assert_eq!(g_index(&[9, 5, 1, 0]), 3);
        assert_eq!(g_index(&[]), 0);
        assert_eq!(g_index(&[0, 0]), 0);
        // One blockbuster paper: top-g sum = 100 ≥ g² for g ≤ 10, but g
        // is also capped by the number of papers.
        assert_eq!(g_index(&[100]), 1);
        let v: Vec<u64> = std::iter::once(100).chain(std::iter::repeat_n(0, 20)).collect();
        assert_eq!(g_index(&v), 10);
    }

    #[test]
    fn g_index_at_least_h_index() {
        // Classic bibliometric fact: g ≥ h.
        let cases: Vec<Vec<u64>> = vec![
            vec![10, 8, 5, 4, 3],
            vec![1, 1, 1, 1],
            vec![25, 8, 5, 3, 3, 3],
            vec![9, 9, 9],
        ];
        for c in cases {
            assert!(g_index(&c) >= h_index(&c), "case {c:?}");
        }
    }

    #[test]
    fn alpha_one_is_h_index() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![5, 6, 5, 6, 5, 5, 5, 5, 5, 5],
            vec![10, 8, 5, 4, 3],
            vec![0, 0, 7],
        ];
        for c in cases {
            assert_eq!(alpha_index(&c, 1.0), h_index(&c), "case {c:?}");
        }
    }

    #[test]
    fn alpha_index_decreases_in_alpha() {
        let v = [12u64, 9, 7, 7, 4, 2, 1];
        let mut prev = u64::MAX;
        for a in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let k = alpha_index(&v, a);
            assert!(k <= prev, "alpha={a}");
            prev = k;
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn alpha_zero_panics() {
        let _ = alpha_index(&[1], 0.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_g_at_least_h(values in proptest::collection::vec(0u64..1000, 0..100)) {
            proptest::prop_assert!(g_index(&values) >= h_index(&values));
        }

        #[test]
        fn prop_g_bounded_by_n(values in proptest::collection::vec(0u64..1000, 0..100)) {
            proptest::prop_assert!(g_index(&values) <= values.len() as u64);
        }

        #[test]
        fn prop_alpha_one_matches_h(values in proptest::collection::vec(0u64..300, 0..100)) {
            proptest::prop_assert_eq!(alpha_index(&values, 1.0), h_index(&values));
        }
    }
}
