//! The exponential threshold grid `(1+ε)^i`.
//!
//! Almost every algorithm in the paper guesses the H-index on a
//! geometric grid: Algorithm 1 keeps a counter per grid level, Algorithm
//! 2 slides a window of levels, Algorithms 5–8 bucket sampled values by
//! level. [`ExpGrid`] centralizes the (surprisingly fiddly) mapping
//! between integer values and grid levels so all of them agree on the
//! arithmetic.
//!
//! Levels are `i = 0, 1, 2, …` with real-valued thresholds
//! `t_i = (1+ε)^i`; an integer value `v` *clears* level `i` iff
//! `v ≥ t_i`, equivalently `v ≥ ceil(t_i)`. Floating-point `powi` is
//! exact enough for every realistic level (values up to 2⁵³), and the
//! integer ceiling is computed with a half-ulp guard so grid decisions
//! are stable and monotone.

/// A geometric grid with base `1 + ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpGrid {
    base: f64,
}

impl ExpGrid {
    /// Creates a grid with base `1 + epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and strictly positive. (Library
    /// entry points validate via [`crate::Epsilon`] first; this is a
    /// defense-in-depth assert.)
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "grid epsilon must be finite and positive"
        );
        Self { base: 1.0 + epsilon }
    }

    /// The grid base `1 + ε`.
    #[must_use]
    pub fn base(self) -> f64 {
        self.base
    }

    /// The real threshold `t_i = (1+ε)^i`.
    #[must_use]
    pub fn threshold(self, level: u32) -> f64 {
        self.base.powi(level as i32)
    }

    /// The smallest integer clearing level `i`: `⌈(1+ε)^i⌉`, with a
    /// guard so that values that are exactly on the grid (up to
    /// half-ulp noise) land on the intended side.
    #[must_use]
    pub fn int_threshold(self, level: u32) -> u64 {
        let t = self.threshold(level);
        // If t is within relative 1e-9 of an integer, treat it as that
        // integer (so 8.000000001, intended as exactly 8, does not ceil
        // to 9); otherwise take the true ceiling.
        let nearest = t.round();
        if (t - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest as u64
        } else {
            t.ceil() as u64
        }
    }

    /// Whether integer `value` clears level `i` (`value ≥ (1+ε)^i`).
    ///
    /// Levels whose real threshold exceeds `u64::MAX` are cleared by
    /// no value — without this guard, the saturating `as u64` cast in
    /// [`Self::int_threshold`] would make `u64::MAX` appear to clear
    /// *every* level, sending level searches into an infinite climb.
    #[must_use]
    pub fn clears(self, value: u64, level: u32) -> bool {
        let t = self.threshold(level);
        if t > u64::MAX as f64 {
            return false;
        }
        value >= self.int_threshold(level)
    }

    /// The highest level cleared by `value`, i.e.
    /// `⌊log_{1+ε} value⌋` computed robustly, or `None` for `value = 0`.
    #[must_use]
    pub fn level_of(self, value: u64) -> Option<u32> {
        if value == 0 {
            return None;
        }
        // Initial guess from logarithms, then fix up with exact integer
        // comparisons (the guess can be off by one either way).
        let guess = ((value as f64).ln() / self.base.ln()).floor();
        let mut level = if guess < 0.0 { 0 } else { guess as u32 };
        while !self.clears(value, level) {
            level -= 1; // value ≥ 1 always clears level 0, so this terminates
        }
        while self.clears(value, level + 1) {
            level += 1;
        }
        Some(level)
    }

    /// Number of levels needed to cover values up to `max_value`
    /// (levels `0 ..= level_of(max_value)`), i.e.
    /// `⌈log_{1+ε} max_value⌉ + 1` slots.
    #[must_use]
    pub fn levels_to_cover(self, max_value: u64) -> u32 {
        match self.level_of(max_value) {
            Some(l) => l + 2, // level_of(max) plus the first level max does NOT clear
            None => 1,
        }
    }
}

/// The grid serializes as its base `1 + ε` (IEEE-754 bits): the base is
/// the entire state, and storing it verbatim — rather than ε — makes the
/// round-trip bit-exact with no float arithmetic on the decode path.
impl crate::snapshot::Snapshot for ExpGrid {
    const TAG: u8 = 12;

    fn write_payload(&self, w: &mut crate::snapshot::Writer<'_>) {
        w.put_f64(self.base);
    }

    fn read_payload(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let base = r.get_f64()?;
        if !(base.is_finite() && base > 1.0) {
            return Err(crate::snapshot::SnapshotError::Invalid(
                "grid base must be finite and greater than 1",
            ));
        }
        Ok(Self { base })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_grow_geometrically() {
        let g = ExpGrid::new(0.5);
        assert_eq!(g.int_threshold(0), 1);
        assert_eq!(g.int_threshold(1), 2); // 1.5 → 2
        assert_eq!(g.int_threshold(2), 3); // 2.25 → 3
        assert_eq!(g.int_threshold(3), 4); // 3.375 → 4
        assert_eq!(g.int_threshold(4), 6); // 5.0625 → 6
    }

    #[test]
    fn exact_powers_are_not_overshot() {
        // With ε = 1 the thresholds are exact powers of two; floating
        // point must not push ceil(2^k) to 2^k + 1.
        let g = ExpGrid::new(1.0);
        for k in 0..60u32 {
            assert_eq!(g.int_threshold(k), 1u64 << k, "k={k}");
        }
    }

    #[test]
    fn level_of_inverts_threshold() {
        for &eps in &[0.05, 0.1, 0.25, 0.5, 1.0] {
            let g = ExpGrid::new(eps);
            for level in 0..40u32 {
                let t = g.int_threshold(level);
                let found = g.level_of(t).unwrap();
                // t clears `level` by construction; it may clear higher
                // levels when consecutive integer thresholds collide.
                assert!(found >= level, "eps={eps} level={level} t={t} found={found}");
                assert!(g.clears(t, found));
                assert!(!g.clears(t, found + 1));
            }
        }
    }

    #[test]
    fn level_of_zero_is_none() {
        assert_eq!(ExpGrid::new(0.1).level_of(0), None);
    }

    #[test]
    fn level_of_one_is_zero() {
        for &eps in &[0.01, 0.3, 0.9] {
            assert_eq!(ExpGrid::new(eps).level_of(1), Some(0), "eps={eps}");
        }
    }

    #[test]
    fn clears_is_monotone_in_value_and_antitone_in_level() {
        let g = ExpGrid::new(0.2);
        for v in 1..200u64 {
            for level in 0..30u32 {
                if g.clears(v, level + 1) {
                    assert!(g.clears(v, level), "v={v} level={level}");
                }
                if g.clears(v, level) {
                    assert!(g.clears(v + 1, level), "v={v} level={level}");
                }
            }
        }
    }

    #[test]
    fn levels_to_cover_covers() {
        let g = ExpGrid::new(0.3);
        for max in [1u64, 2, 10, 1000, 1_000_000] {
            let levels = g.levels_to_cover(max);
            // max must NOT clear the last level of the cover.
            assert!(!g.clears(max, levels - 1), "max={max}");
            assert!(g.clears(max, levels - 2), "max={max}");
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_epsilon_panics() {
        let _ = ExpGrid::new(0.0);
    }

    #[test]
    fn u64_max_terminates_and_is_consistent() {
        // Regression: thresholds beyond u64::MAX saturate in the
        // integer cast; level_of(u64::MAX) must still terminate and
        // satisfy the defining property.
        for &eps in &[0.03, 0.1, 0.5, 0.99] {
            let g = ExpGrid::new(eps);
            for v in [u64::MAX, u64::MAX - 1, 1u64 << 63] {
                let level = g.level_of(v).unwrap();
                assert!(g.clears(v, level), "eps={eps} v={v}");
                assert!(!g.clears(v, level + 1), "eps={eps} v={v}");
            }
        }
    }

    #[test]
    fn astronomical_levels_cleared_by_nothing() {
        let g = ExpGrid::new(0.1);
        // 1.1^2000 ≫ u64::MAX: no value clears it.
        assert!(!g.clears(u64::MAX, 2000));
        assert!(!g.clears(u64::MAX, 10_000));
    }

    proptest::proptest! {
        #[test]
        fn prop_level_of_definition(v in 1u64..1_000_000, eps_milli in 10u32..1000) {
            let g = ExpGrid::new(f64::from(eps_milli) / 1000.0);
            let level = g.level_of(v).unwrap();
            proptest::prop_assert!(g.clears(v, level));
            proptest::prop_assert!(!g.clears(v, level + 1));
        }

        #[test]
        fn prop_int_thresholds_nondecreasing(eps_milli in 10u32..2000, level in 0u32..60) {
            let g = ExpGrid::new(f64::from(eps_milli) / 1000.0);
            proptest::prop_assert!(g.int_threshold(level) <= g.int_threshold(level + 1));
        }
    }
}
