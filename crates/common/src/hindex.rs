//! Exact (offline) H-index computation.
//!
//! Implements Definition 1 of the paper: for a vector `V ∈ ℕⁿ`, the
//! H-index `h*(V)` is the largest `i` such that at least `i` entries of
//! `V` are `≥ i`. Equivalently, with `V'` the descending sort of `V`,
//! `h*(V) = max_i min(V'[i], i)` (1-indexed).
//!
//! Two exact algorithms are provided:
//!
//! * [`h_index`] — linear-time counting algorithm, no sort required.
//! * [`h_index_sorted_desc`] — the textbook scan over a descending-sorted
//!   slice; used as an independent oracle in tests.
//!
//! [`IncrementalHIndex`] maintains the exact H-index of a growing
//! multiset of values with `O(h)` words of state — the smallest possible
//! exact online representation and the paper's implicit "store
//! everything" strawman tightened to its minimal form. It is the exact
//! baseline the streaming algorithms are compared against in the
//! experiments (E11).

use crate::traits::SpaceUsage;

/// Exact H-index of a slice in `O(n)` time and `O(n)` scratch space.
///
/// Counting formulation: values are clamped to `n = values.len()`
/// (a value larger than `n` can never raise the H-index above `n`),
/// bucketed, and the largest `k` with `#{v ≥ k} ≥ k` is found by one
/// suffix scan.
///
/// ```
/// use hindex_common::h_index;
/// assert_eq!(h_index(&[5, 6, 5, 6, 5, 5, 5, 5, 5, 5]), 5);
/// assert_eq!(h_index(&[]), 0);
/// assert_eq!(h_index(&[0, 0, 0]), 0);
/// assert_eq!(h_index(&[100]), 1);
/// ```
#[must_use]
pub fn h_index(values: &[u64]) -> u64 {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    let mut buckets = vec![0u64; n + 1];
    for &v in values {
        let idx = (v as usize).min(n);
        buckets[idx] += 1;
    }
    let mut at_least = 0u64;
    for k in (1..=n).rev() {
        at_least += buckets[k];
        if at_least >= k as u64 {
            return k as u64;
        }
    }
    0
}

/// Exact H-index of a slice already sorted in descending order.
///
/// `h*(V') = max_i min(V'[i], i)` with 1-based `i`. Used as an
/// independent test oracle for [`h_index`].
///
/// # Panics
///
/// Panics (debug builds) if the slice is not sorted descending.
#[must_use]
pub fn h_index_sorted_desc(sorted: &[u64]) -> u64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] >= w[1]),
        "input must be sorted in descending order"
    );
    let mut h = 0u64;
    for (i, &v) in sorted.iter().enumerate() {
        let rank = (i + 1) as u64;
        h = h.max(rank.min(v));
        if v < rank {
            break;
        }
    }
    h
}

/// The support of the H-index: the multiset of values `≥ h*(V)`.
///
/// This is `H(V)` from Definition 1 of the paper. Returned in
/// descending order.
///
/// ```
/// use hindex_common::h_support;
/// assert_eq!(h_support(&[3, 1, 4, 1, 5]), vec![5, 4, 3]);
/// ```
#[must_use]
pub fn h_support(values: &[u64]) -> Vec<u64> {
    let h = h_index(values);
    if h == 0 {
        return Vec::new();
    }
    let mut support: Vec<u64> = values.iter().copied().filter(|&v| v >= h).collect();
    support.sort_unstable_by(|a, b| b.cmp(a));
    support
}

/// Exact online H-index over a stream of aggregate values using `O(h)`
/// words.
///
/// Maintains a min-heap of the current H-support (the at-most `h + 1`
/// largest values that are each `≥ h`). Inserting a value either leaves
/// `h` unchanged or increases it by at most one, so a single heap
/// adjustment per element suffices.
///
/// This is the strongest exact baseline: its space grows linearly with
/// the true H-index, which experiment E11 contrasts with the paper's
/// sublinear sketches.
///
/// ```
/// use hindex_common::IncrementalHIndex;
/// let mut ih = IncrementalHIndex::new();
/// for v in [5u64, 6, 5, 6, 5, 5, 5, 5, 5, 5] {
///     ih.insert(v);
/// }
/// assert_eq!(ih.h_index(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalHIndex {
    /// Min-heap (via `Reverse`) of the values currently counted toward h.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    /// Number of values inserted so far.
    len: u64,
}

impl IncrementalHIndex {
    /// Creates an empty tracker (`h = 0`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one aggregate value into the multiset.
    pub fn insert(&mut self, value: u64) {
        self.len += 1;
        let h = self.heap.len() as u64;
        if value > h {
            self.heap.push(std::cmp::Reverse(value));
            // The heap now holds h + 1 values each ≥ h + 1? Only if the
            // smallest kept value clears the new bar; otherwise evict it.
            let new_h = self.heap.len() as u64;
            if let Some(&std::cmp::Reverse(min)) = self.heap.peek() {
                if min < new_h {
                    self.heap.pop();
                }
            }
        }
    }

    /// The exact H-index of everything inserted so far.
    #[must_use]
    pub fn h_index(&self) -> u64 {
        self.heap.len() as u64
    }

    /// Number of values inserted so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether anything has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl SpaceUsage for IncrementalHIndex {
    fn space_words(&self) -> usize {
        // One word per retained support value, plus the length counter.
        self.heap.len() + 1
    }
}

impl crate::traits::Estimate for IncrementalHIndex {
    fn estimate(&self) -> u64 {
        self.h_index()
    }
}

impl crate::traits::AggregateEstimator for IncrementalHIndex {
    fn ingest(&mut self, value: u64) {
        self.insert(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle straight from Definition 1.
    fn h_oracle(values: &[u64]) -> u64 {
        let n = values.len() as u64;
        (0..=n)
            .filter(|&i| values.iter().filter(|&&v| v >= i).count() as u64 >= i)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn paper_example_2() {
        // Example 2 of the paper: V with ten entries, h* = 5.
        let v = [5u64, 5, 6, 5, 5, 6, 5, 5, 5, 5];
        assert_eq!(h_index(&v), 5);
        assert_eq!(h_oracle(&v), 5);
    }

    #[test]
    fn empty_and_zeros() {
        assert_eq!(h_index(&[]), 0);
        assert_eq!(h_index(&[0]), 0);
        assert_eq!(h_index(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn single_values() {
        assert_eq!(h_index(&[1]), 1);
        assert_eq!(h_index(&[1000]), 1);
    }

    #[test]
    fn all_equal() {
        // k copies of k has h = k; k copies of m ≥ k also h = k.
        for k in 1..50u64 {
            let v: Vec<u64> = std::iter::repeat_n(k, k as usize).collect();
            assert_eq!(h_index(&v), k, "k={k}");
            let v: Vec<u64> = std::iter::repeat_n(k + 17, k as usize).collect();
            assert_eq!(h_index(&v), k, "k={k}");
        }
    }

    #[test]
    fn staircase() {
        // values n, n-1, ..., 1 → h = ceil(n/2)-ish: #{v ≥ k} = n-k+1 ≥ k
        // iff k ≤ (n+1)/2.
        for n in 1..100u64 {
            let v: Vec<u64> = (1..=n).rev().collect();
            assert_eq!(h_index(&v), n.div_ceil(2), "n={n}");
        }
    }

    #[test]
    fn values_exceeding_n_are_clamped() {
        let v = [u64::MAX, u64::MAX, u64::MAX];
        assert_eq!(h_index(&v), 3);
    }

    #[test]
    fn sorted_oracle_agrees() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![10, 8, 5, 4, 3],
            vec![25, 8, 5, 3, 3, 3],
            vec![9, 9, 9, 9, 9, 9, 9, 9, 9],
        ];
        for c in cases {
            let mut s = c.clone();
            s.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(h_index(&c), h_index_sorted_desc(&s), "case {c:?}");
        }
    }

    #[test]
    fn support_contents() {
        let v = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let h = h_index(&v); // values ≥ 4: {4,5,9,6} → h = 4
        assert_eq!(h, 4);
        assert_eq!(h_support(&v), vec![9, 6, 5, 4]);
    }

    #[test]
    fn support_empty_when_h_zero() {
        assert!(h_support(&[0, 0]).is_empty());
        assert!(h_support(&[]).is_empty());
    }

    #[test]
    fn incremental_matches_batch_on_permutations() {
        let base = [7u64, 2, 9, 4, 4, 4, 1, 0, 12, 5, 5, 3];
        // Try several orders: exact online must agree regardless.
        let orders: Vec<Vec<u64>> = vec![
            base.to_vec(),
            {
                let mut b = base.to_vec();
                b.sort_unstable();
                b
            },
            {
                let mut b = base.to_vec();
                b.sort_unstable_by(|a, b| b.cmp(a));
                b
            },
        ];
        for order in orders {
            let mut ih = IncrementalHIndex::new();
            for (i, &v) in order.iter().enumerate() {
                ih.insert(v);
                assert_eq!(
                    ih.h_index(),
                    h_index(&order[..=i]),
                    "prefix {:?}",
                    &order[..=i]
                );
            }
        }
    }

    #[test]
    fn incremental_space_is_h_plus_one() {
        let mut ih = IncrementalHIndex::new();
        for v in 1..=1000u64 {
            ih.insert(v);
        }
        let h = ih.h_index();
        assert!(ih.space_words() as u64 <= h + 2, "space ≈ h");
    }

    proptest::proptest! {
        #[test]
        fn prop_counting_matches_oracle(values in proptest::collection::vec(0u64..500, 0..200)) {
            proptest::prop_assert_eq!(h_index(&values), h_oracle(&values));
        }

        #[test]
        fn prop_sorted_matches_counting(mut values in proptest::collection::vec(0u64..500, 0..200)) {
            let unsorted = values.clone();
            values.sort_unstable_by(|a, b| b.cmp(a));
            proptest::prop_assert_eq!(h_index(&unsorted), h_index_sorted_desc(&values));
        }

        #[test]
        fn prop_incremental_matches_counting(values in proptest::collection::vec(0u64..300, 0..300)) {
            let mut ih = IncrementalHIndex::new();
            for &v in &values { ih.insert(v); }
            proptest::prop_assert_eq!(ih.h_index(), h_index(&values));
        }

        #[test]
        fn prop_h_index_bounds(values in proptest::collection::vec(0u64..10_000, 0..200)) {
            let h = h_index(&values);
            // 0 ≤ h ≤ n and h ≤ max value.
            proptest::prop_assert!(h <= values.len() as u64);
            proptest::prop_assert!(h <= values.iter().copied().max().unwrap_or(0));
        }

        #[test]
        fn prop_monotone_under_insertion(values in proptest::collection::vec(0u64..300, 1..100), extra in 0u64..300) {
            // Adding an element never decreases the H-index.
            let before = h_index(&values);
            let mut bigger = values.clone();
            bigger.push(extra);
            proptest::prop_assert!(h_index(&bigger) >= before);
            proptest::prop_assert!(h_index(&bigger) <= before + 1);
        }

        #[test]
        fn prop_support_size_at_least_h(values in proptest::collection::vec(0u64..300, 0..200)) {
            let h = h_index(&values);
            let s = h_support(&values);
            proptest::prop_assert!(s.len() as u64 >= h);
            proptest::prop_assert!(s.iter().all(|&v| v >= h) || h == 0);
        }
    }
}
