//! Foundational definitions for the `hindex` workspace.
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * the exact (offline) definition of the H-index and its relatives
//!   ([`h_index`], [`h_support`], [`variants`]),
//! * the estimator traits every streaming algorithm implements
//!   ([`traits::AggregateEstimator`], [`traits::CashRegisterEstimator`],
//!   [`traits::SpaceUsage`]),
//! * validated parameter newtypes ([`params::Epsilon`], [`params::Delta`]),
//! * the exponential threshold grid `(1+ε)^i` shared by most of the
//!   paper's algorithms ([`grid::ExpGrid`]),
//! * approximation-contract helpers used by tests and experiments
//!   ([`approx`]).
//!
//! The paper reproduced throughout the workspace is *"Streaming
//! Algorithms for Measuring H-Impact"* (Govindan, Monemizadeh,
//! Muthukrishnan; PODS 2017). Definition 1 of the paper is implemented
//! verbatim by [`h_index`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod approx;
pub mod engine;
pub mod error;
pub mod grid;
pub mod hindex;
pub mod invariants;
pub mod params;
pub mod snapshot;
pub mod telemetry;
pub mod traits;
pub mod variants;

pub use approx::{within_additive, within_multiplicative, ApproxKind, Guarantee};
pub use engine::{Degraded, Engine};
pub use error::{Error, Result};
pub use grid::ExpGrid;
pub use hindex::{h_index, h_index_sorted_desc, h_support, IncrementalHIndex};
pub use params::{Delta, Epsilon};
pub use snapshot::{Snapshot, SnapshotError};
pub use telemetry::BankCounters;
pub use traits::{
    AggregateEstimator, CashRegisterEstimator, Estimate, EstimatorParams, Mergeable, SpaceUsage,
    TurnstileEstimator,
};
