//! Durable sketch snapshots: a versioned, length-prefixed,
//! little-endian binary format with a trailing FNV-1a checksum.
//!
//! Linear sketches are exactly the state worth checkpointing: restoring
//! a sketch and replaying the stream from the recorded offset is
//! bit-identical to never having stopped (Definition 1 linearity). This
//! module provides the wire format every estimator in the workspace
//! serializes through; the byte layout and compatibility policy are
//! specified in `docs/ALGORITHMS.md` ("Persistence format").
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HIXS"
//! 4       1     format version (currently 1)
//! 5       1     type tag (one per Snapshot impl; see docs/ALGORITHMS.md)
//! 6       8     payload length `L` (u64, little-endian)
//! 14      L     payload (type-specific, little-endian throughout)
//! 14+L    8     FNV-1a 64 checksum of bytes [0, 14+L) (little-endian)
//! ```
//!
//! Nested structures embed complete child frames inside the parent's
//! payload, so every sub-object is independently checksummed and
//! type-tagged. Decoding is *total*: every failure mode surfaces as a
//! typed [`SnapshotError`] — decoders never panic on hostile bytes and
//! never allocate more than the input length implies (a length prefix
//! is validated against the remaining buffer *before* any allocation).

use std::fmt;

/// The 4-byte frame magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HIXS";

/// The current (and only) format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Bytes of framing around every payload: magic (4) + version (1) +
/// tag (1) + payload length (8) + trailing checksum (8).
pub const FRAME_OVERHEAD: usize = HEADER_LEN + 8;

/// Bytes before the payload: magic + version + tag + length prefix.
const HEADER_LEN: usize = 14;

/// FNV-1a 64-bit hash over a byte slice — the frame checksum. Kept
/// self-contained here (the sketch layer's digest helpers are gated
/// behind `debug_invariants`; persistence must work in every build).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a snapshot failed to decode. Every variant is reachable from
/// hostile bytes; none of them panics or over-allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed from the current position.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version byte is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u8),
    /// The frame carries a different type than the caller asked for.
    WrongTag {
        /// The tag of the type being decoded.
        expected: u8,
        /// The tag found in the frame header.
        found: u8,
    },
    /// The trailing FNV-1a checksum does not match the frame bytes.
    ChecksumMismatch,
    /// The payload decoded cleanly but left unread bytes behind.
    TrailingBytes {
        /// Number of payload bytes the decoder did not consume.
        unread: usize,
    },
    /// The bytes parsed but violate a semantic invariant of the type
    /// (out-of-range field element, inconsistent dimensions, …).
    Invalid(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, had {available}")
            }
            SnapshotError::BadMagic => write!(f, "snapshot has bad magic (not an HIXS frame)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::WrongTag { expected, found } => {
                write!(f, "snapshot type tag mismatch: expected {expected}, found {found}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::TrailingBytes { unread } => {
                write!(f, "snapshot payload has {unread} trailing bytes")
            }
            SnapshotError::Invalid(what) => write!(f, "snapshot invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian payload writer used by [`Snapshot::write_payload`].
#[derive(Debug)]
pub struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    /// Wraps a byte buffer.
    #[must_use]
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Self { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i128`.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (caller writes its own length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a complete child frame for a nested snapshotable value.
    pub fn put_nested<C: Snapshot>(&mut self, child: &C) {
        child.write_into(self.buf);
    }
}

/// Bounds-checked little-endian payload reader used by
/// [`Snapshot::read_payload`]. Every read either advances the cursor or
/// returns [`SnapshotError::Truncated`]; nothing panics.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload slice.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a little-endian `i128`.
    pub fn get_i128(&mut self) -> Result<i128, SnapshotError> {
        let s = self.take(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(i128::from_le_bytes(b))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(self.get_i128()? as u128)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an element count that precedes `elem_size`-byte elements,
    /// validating it against the bytes actually remaining so a hostile
    /// length prefix can never force an over-sized allocation: the
    /// decoder may allocate at most `remaining / elem_size` elements,
    /// which is bounded by the input length.
    pub fn get_count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let raw = self.get_u64()?;
        let count = usize::try_from(raw)
            .map_err(|_| SnapshotError::Invalid("element count exceeds address space"))?;
        let elem = elem_size.max(1);
        if count > self.remaining() / elem {
            return Err(SnapshotError::Truncated {
                needed: count.saturating_mul(elem),
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    /// Reads a `usize` stored as `u64` (a dimension, not a count; use
    /// [`Reader::get_count`] when the value sizes an allocation).
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| SnapshotError::Invalid("value exceeds address space"))
    }

    /// Decodes a nested child frame and advances past it.
    pub fn get_nested<C: Snapshot>(&mut self) -> Result<C, SnapshotError> {
        let (child, used) = C::read_from(&self.bytes[self.pos..])?;
        self.pos += used;
        Ok(child)
    }
}

/// Versioned binary serialization for sketch and estimator state.
///
/// Implementors provide the per-type payload codec; the trait supplies
/// the uniform frame (magic, version, tag, length prefix, checksum) via
/// [`Snapshot::write_into`] / [`Snapshot::read_from`]. The contract,
/// pinned by `tests/snapshot_roundtrip.rs` (lint L6):
///
/// * `read_from(write_into(x)) ≡ x` — bit-identical state, as observed
///   by `state_digest()` where available, plus estimates/decodes;
/// * decoding arbitrary bytes returns a typed [`SnapshotError`], never
///   panics, and never allocates beyond what the input length admits.
pub trait Snapshot: Sized {
    /// Type tag stored in the frame header. Tags are a registry
    /// (see `docs/ALGORITHMS.md`) and are never reused across types.
    const TAG: u8;

    /// Writes the payload fields (no framing).
    fn write_payload(&self, w: &mut Writer<'_>);

    /// Decodes the payload fields (no framing), validating every
    /// semantic invariant of the type.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on truncated, corrupt, or invalid bytes.
    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;

    /// Appends one complete frame (header + payload + checksum).
    fn write_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        out.push(Self::TAG);
        out.extend_from_slice(&0u64.to_le_bytes()); // length backpatched
        let payload_start = out.len();
        {
            let mut w = Writer::new(out);
            self.write_payload(&mut w);
        }
        let payload_len = (out.len() - payload_start) as u64;
        out[start + 6..start + HEADER_LEN].copy_from_slice(&payload_len.to_le_bytes());
        let checksum = fnv1a(&out[start..]);
        out.extend_from_slice(&checksum.to_le_bytes());
    }

    /// Serializes into a fresh buffer.
    #[must_use]
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }

    /// [`fnv1a`] over the canonical encoding — a state digest available
    /// in every build (the sketch layer's `state_digest` is gated
    /// behind `debug_invariants`). Two values digest equal iff their
    /// frames are bit-identical, which is what chaos runs assert when
    /// comparing a faulted run against a clean one.
    #[must_use]
    fn frame_digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Decodes one frame from the front of `bytes`, returning the value
    /// and the number of bytes consumed (so frames concatenate).
    ///
    /// The checksum is verified over the whole frame *before* the
    /// payload is interpreted, so random corruption is caught by the
    /// checksum rather than by whichever field it lands in.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on truncated, corrupt, or invalid bytes.
    fn read_from(bytes: &[u8]) -> Result<(Self, usize), SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes[4] != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(bytes[4]));
        }
        if bytes[5] != Self::TAG {
            return Err(SnapshotError::WrongTag {
                expected: Self::TAG,
                found: bytes[5],
            });
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[6..HEADER_LEN]);
        let payload_len = u64::from_le_bytes(len_bytes);
        // Validate the length prefix against the real buffer before any
        // use: a hostile prefix must fail here, not size an allocation.
        let payload_len = usize::try_from(payload_len)
            .ok()
            .filter(|&l| l <= bytes.len().saturating_sub(FRAME_OVERHEAD))
            .ok_or(SnapshotError::Truncated {
                needed: FRAME_OVERHEAD,
                available: bytes.len(),
            })?;
        let frame_end = HEADER_LEN + payload_len;
        let mut ck = [0u8; 8];
        ck.copy_from_slice(&bytes[frame_end..frame_end + 8]);
        if fnv1a(&bytes[..frame_end]) != u64::from_le_bytes(ck) {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader::new(&bytes[HEADER_LEN..frame_end]);
        let value = Self::read_payload(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                unread: r.remaining(),
            });
        }
        Ok((value, frame_end + 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Pair {
        a: u64,
        b: Vec<u64>,
    }

    impl Snapshot for Pair {
        const TAG: u8 = 250;

        fn write_payload(&self, w: &mut Writer<'_>) {
            w.put_u64(self.a);
            w.put_usize(self.b.len());
            for &v in &self.b {
                w.put_u64(v);
            }
        }

        fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
            let a = r.get_u64()?;
            let n = r.get_count(8)?;
            let mut b = Vec::with_capacity(n);
            for _ in 0..n {
                b.push(r.get_u64()?);
            }
            Ok(Self { a, b })
        }
    }

    #[test]
    fn round_trip() {
        let x = Pair { a: 7, b: vec![1, 2, 3] };
        let bytes = x.to_bytes();
        let (y, used) = Pair::read_from(&bytes).unwrap();
        assert_eq!(x, y);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn frames_concatenate() {
        let x = Pair { a: 1, b: vec![] };
        let y = Pair { a: 2, b: vec![9] };
        let mut bytes = x.to_bytes();
        y.write_into(&mut bytes);
        let (gx, used) = Pair::read_from(&bytes).unwrap();
        let (gy, rest) = Pair::read_from(&bytes[used..]).unwrap();
        assert_eq!((gx, gy), (x, y));
        assert_eq!(used + rest, bytes.len());
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = Pair { a: 7, b: vec![1, 2, 3] }.to_bytes();
        for n in 0..bytes.len() {
            let err = Pair::read_from(&bytes[..n]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch),
                "prefix {n}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let bytes = Pair { a: 7, b: vec![1, 2, 3] }.to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(Pair::read_from(&corrupt).is_err(), "byte {i} flip undetected");
        }
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut bytes = Pair { a: 7, b: vec![] }.to_bytes();
        // Claim a multi-exabyte payload.
        bytes[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Pair::read_from(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));
        // Claim a multi-exabyte element count inside a valid frame.
        let mut w = Vec::new();
        {
            let mut buf = Writer::new(&mut w);
            buf.put_u64(1);
            buf.put_u64(u64::MAX); // count
        }
        let mut framed = Vec::new();
        framed.extend_from_slice(&SNAPSHOT_MAGIC);
        framed.push(SNAPSHOT_VERSION);
        framed.push(Pair::TAG);
        framed.extend_from_slice(&(w.len() as u64).to_le_bytes());
        framed.extend_from_slice(&w);
        let ck = fnv1a(&framed);
        framed.extend_from_slice(&ck.to_le_bytes());
        assert!(matches!(
            Pair::read_from(&framed),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn wrong_tag_and_version_and_magic() {
        let good = Pair { a: 7, b: vec![] }.to_bytes();
        let mut b = good.clone();
        b[5] = 99;
        assert!(matches!(
            Pair::read_from(&b),
            Err(SnapshotError::WrongTag { expected: 250, found: 99 })
        ));
        let mut b = good.clone();
        b[4] = 2;
        // The checksum covers the version byte, but version is checked
        // first so future formats can evolve the trailer.
        assert_eq!(Pair::read_from(&b).unwrap_err(), SnapshotError::UnsupportedVersion(2));
        let mut b = good;
        b[0] = b'X';
        assert_eq!(Pair::read_from(&b).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // A frame whose payload is one byte longer than the codec reads.
        let mut payload = Vec::new();
        {
            let mut w = Writer::new(&mut payload);
            w.put_u64(1);
            w.put_u64(0); // zero elements
            w.put_u8(0xEE); // stray byte
        }
        let mut framed = Vec::new();
        framed.extend_from_slice(&SNAPSHOT_MAGIC);
        framed.push(SNAPSHOT_VERSION);
        framed.push(Pair::TAG);
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&payload);
        let ck = fnv1a(&framed);
        framed.extend_from_slice(&ck.to_le_bytes());
        assert_eq!(
            Pair::read_from(&framed).unwrap_err(),
            SnapshotError::TrailingBytes { unread: 1 }
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::ChecksumMismatch.to_string().contains("checksum"));
        assert!(SnapshotError::Invalid("x out of range").to_string().contains("x out of range"));
    }
}
