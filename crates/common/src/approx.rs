//! Approximation contracts.
//!
//! §2.3 of the paper defines two contracts for a streaming estimator
//! `ĥ` of the true H-index `h*`:
//!
//! * **multiplicative** `(ε, δ, s)`: `|h* − ĥ| ≤ ε·h*` with probability
//!   `≥ 1 − δ`;
//! * **additive** `(ε, δ, s)`: `|h* − ĥ| ≤ ε·n` with probability
//!   `≥ 1 − δ`.
//!
//! The helpers here are how tests and experiments *check* those
//! contracts against ground truth.

use crate::params::{Delta, Epsilon};

/// Which flavour of approximation a guarantee promises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxKind {
    /// Error measured relative to the true value: `|h* − ĥ| ≤ ε·h*`.
    Multiplicative,
    /// Error measured against the scale `n`: `|h* − ĥ| ≤ ε·n`.
    Additive,
}

/// A complete `(kind, ε, δ)` guarantee, as carried by estimators for
/// reporting and by experiments for checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarantee {
    /// Multiplicative or additive.
    pub kind: ApproxKind,
    /// Accuracy parameter.
    pub epsilon: Epsilon,
    /// Failure probability (deterministic algorithms report δ → 0 as
    /// `None`).
    pub delta: Option<Delta>,
}

impl Guarantee {
    /// A deterministic multiplicative guarantee (Theorems 5 and 6).
    #[must_use]
    pub fn deterministic_multiplicative(epsilon: Epsilon) -> Self {
        Self {
            kind: ApproxKind::Multiplicative,
            epsilon,
            delta: None,
        }
    }

    /// A randomized guarantee.
    #[must_use]
    pub fn randomized(kind: ApproxKind, epsilon: Epsilon, delta: Delta) -> Self {
        Self {
            kind,
            epsilon,
            delta: Some(delta),
        }
    }

    /// Checks one observation against this guarantee.
    ///
    /// `scale` is `n` for additive guarantees and ignored for
    /// multiplicative ones.
    #[must_use]
    pub fn holds(&self, true_value: u64, estimate: u64, scale: u64) -> bool {
        match self.kind {
            ApproxKind::Multiplicative => {
                within_multiplicative(true_value, estimate, self.epsilon.get())
            }
            ApproxKind::Additive => within_additive(true_value, estimate, self.epsilon.get(), scale),
        }
    }
}

/// `|true − est| ≤ ε · true`, with exact integer arithmetic (no float
/// round-off on the comparison side).
#[must_use]
pub fn within_multiplicative(true_value: u64, estimate: u64, epsilon: f64) -> bool {
    let diff = true_value.abs_diff(estimate) as f64;
    diff <= epsilon * true_value as f64
}

/// `|true − est| ≤ ε · scale`.
#[must_use]
pub fn within_additive(true_value: u64, estimate: u64, epsilon: f64, scale: u64) -> bool {
    let diff = true_value.abs_diff(estimate) as f64;
    diff <= epsilon * scale as f64
}

/// Relative error `|true − est| / true` (`0` when both are zero,
/// `+∞` when only the truth is zero). Used by experiment reports.
#[must_use]
pub fn relative_error(true_value: u64, estimate: u64) -> f64 {
    if true_value == 0 {
        if estimate == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        true_value.abs_diff(estimate) as f64 / true_value as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicative_basics() {
        assert!(within_multiplicative(100, 90, 0.1));
        assert!(within_multiplicative(100, 110, 0.1));
        assert!(!within_multiplicative(100, 89, 0.1));
        assert!(!within_multiplicative(100, 112, 0.1));
        // h* = 0 forces an exact answer.
        assert!(within_multiplicative(0, 0, 0.1));
        assert!(!within_multiplicative(0, 1, 0.1));
    }

    #[test]
    fn additive_basics() {
        assert!(within_additive(100, 50, 0.1, 1000));
        assert!(!within_additive(100, 50, 0.01, 1000));
        assert!(within_additive(0, 5, 0.1, 100));
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0, 0), 0.0);
        assert!(relative_error(0, 3).is_infinite());
        assert!((relative_error(100, 90) - 0.1).abs() < 1e-12);
        assert!((relative_error(100, 115) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn guarantee_dispatches_by_kind() {
        let eps = Epsilon::new(0.1).unwrap();
        let m = Guarantee::deterministic_multiplicative(eps);
        assert!(m.holds(100, 91, 999_999)); // scale ignored
        assert!(!m.holds(100, 80, 999_999));

        let a = Guarantee::randomized(ApproxKind::Additive, eps, Delta::new(0.05).unwrap());
        assert!(a.holds(100, 80, 1000)); // |20| ≤ 0.1·1000
        assert!(!a.holds(100, 80, 100));
    }
}
