//! Sliding-window H-index: the recency extension of §5.
//!
//! §5 names H-index variations "that take publication dates … into
//! account". The streaming form: the H-index of the **last `W`
//! publications** only, over an unbounded aggregate stream — old work
//! ages out, so the measure tracks *current* impact.
//!
//! No algorithm in the paper handles expiry (its counters only grow),
//! so this module composes Algorithm 1's threshold grid with the DGIM
//! sliding-window counters of [`hindex_sketch::Dgim`]: level `i`'s
//! counter becomes a DGIM instance over the indicator stream
//! "element ≥ (1+ε)ⁱ". DGIM contributes a further `(1±ε_w)` error on
//! each count, so the estimate satisfies, up to that noise, the
//! Theorem 5 sandwich against the window's true H-index —
//! `(1−ε)(1−ε_w)·h_W ≲ ĥ ≲ (1+ε_w)·h_W` — in
//! `O(ε⁻¹ ε_w⁻¹ log n log² W)` bits.

use hindex_common::{AggregateEstimator, Epsilon, Estimate, ExpGrid, SpaceUsage};
use hindex_sketch::Dgim;

/// Approximate H-index of the most recent `W` stream elements.
#[derive(Debug, Clone)]
pub struct SlidingHIndex {
    grid: ExpGrid,
    window: u64,
    /// DGIM precision parameter (buckets per size).
    k: usize,
    /// Per-level sliding counters of `#{recent elements ≥ t_i}`,
    /// created lazily like Algorithm 1's (a late counter starts at the
    /// shared elapsed time, which is exact: earlier bits were 0).
    counters: Vec<Dgim>,
    time: u64,
    /// DGIM's relative counting error, folded into the accept rule.
    eps_window: f64,
}

impl SlidingHIndex {
    /// Creates the estimator: grid accuracy `epsilon`, window length
    /// `window`, per-counter DGIM error `eps_window`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `eps_window ∉ (0, 1)`.
    #[must_use]
    pub fn new(epsilon: Epsilon, window: u64, eps_window: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            eps_window > 0.0 && eps_window < 1.0,
            "window accuracy must lie in (0,1)"
        );
        Self {
            grid: ExpGrid::new(epsilon.get()),
            window,
            k: (0.5 / eps_window).ceil() as usize,
            counters: Vec::new(),
            time: 0,
            eps_window,
        }
    }

    /// The window length `W`.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Estimate for SlidingHIndex {
    /// Largest grid threshold whose (slack-adjusted) recent count
    /// reaches it.
    fn estimate(&self) -> u64 {
        let slack = 1.0 - self.eps_window;
        for (i, c) in self.counters.iter().enumerate().rev() {
            let t = self.grid.threshold(i as u32);
            if c.count() as f64 >= slack * t {
                return (slack * t).ceil() as u64;
            }
        }
        0
    }
}

impl AggregateEstimator for SlidingHIndex {
    fn ingest(&mut self, value: u64) {
        self.time += 1;
        let level = self.grid.level_of(value);
        // Extend to cover this value's level (new counters start at the
        // current time: all their past bits were 0 by definition).
        if let Some(l) = level {
            let l = l as usize;
            while self.counters.len() <= l {
                self.counters
                    .push(Dgim::started_at(self.window, self.k, self.time - 1));
            }
        }
        for (i, c) in self.counters.iter_mut().enumerate() {
            c.push(level.is_some_and(|l| l as usize >= i));
        }
    }

    /// Batched ingest with lazy counter synchronisation. The scalar
    /// path pushes one bit into **every** level counter per item; here
    /// an item only touches the counters it sets (levels `0..=l`),
    /// catching each one up with a collapsed zero run first. Counters
    /// above the item's level simply fall behind the shared clock and
    /// are re-synced once at the end of the batch. Since
    /// [`Dgim::push_zeros`] is state-identical to repeated
    /// `push(false)`, every counter consumes the exact bit sequence of
    /// the scalar path and the final state is bit-identical — at
    /// `O(l+1)` counter touches per item instead of `O(levels)`.
    fn ingest_batch(&mut self, values: &[u64]) {
        for &value in values {
            self.time += 1;
            let Some(level) = self.grid.level_of(value) else {
                continue;
            };
            let l = level as usize;
            while self.counters.len() <= l {
                self.counters
                    .push(Dgim::started_at(self.window, self.k, self.time - 1));
            }
            for c in &mut self.counters[..=l] {
                c.push_zeros(self.time - 1 - c.time());
                c.push(true);
            }
        }
        for c in &mut self.counters {
            c.push_zeros(self.time - c.time());
        }
    }
}

impl SpaceUsage for SlidingHIndex {
    fn space_words(&self) -> usize {
        self.counters.iter().map(SpaceUsage::space_words).sum::<usize>() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::VecDeque;

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).unwrap()
    }

    /// Exact reference over the window.
    struct Exact {
        w: usize,
        buf: VecDeque<u64>,
    }

    impl Exact {
        fn new(w: usize) -> Self {
            Self { w, buf: VecDeque::new() }
        }
        fn push(&mut self, v: u64) {
            self.buf.push_back(v);
            if self.buf.len() > self.w {
                self.buf.pop_front();
            }
        }
        fn h(&self) -> u64 {
            let v: Vec<u64> = self.buf.iter().copied().collect();
            h_index(&v)
        }
    }

    #[test]
    fn empty_is_zero() {
        let est = SlidingHIndex::new(eps(0.2), 100, 0.1);
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn within_window_behaves_like_algorithm_1() {
        // Stream shorter than the window: plain (1−ε)-approximation.
        let mut est = SlidingHIndex::new(eps(0.1), 10_000, 0.05);
        let values: Vec<u64> = (1..=500).collect();
        est.extend_from(values.iter().copied());
        let truth = h_index(&values);
        let got = est.estimate();
        assert!(got <= truth + 1);
        assert!(got as f64 >= 0.85 * truth as f64, "got {got} truth {truth}");
    }

    #[test]
    fn decays_after_burst() {
        // A burst of high-impact papers followed by junk: the windowed
        // H-index must fall once the burst expires.
        let w = 200u64;
        let mut est = SlidingHIndex::new(eps(0.2), w, 0.1);
        for _ in 0..150 {
            est.ingest(1_000);
        }
        let peak = est.estimate();
        assert!(peak >= 100, "peak {peak}");
        for _ in 0..400 {
            est.ingest(0);
        }
        let decayed = est.estimate();
        assert_eq!(decayed, 0, "old impact did not expire");
    }

    #[test]
    fn tracks_exact_window_h_on_random_streams() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = 300u64;
        let e_grid = 0.15;
        let e_win = 0.05;
        let mut est = SlidingHIndex::new(eps(e_grid), w, e_win);
        let mut exact = Exact::new(w as usize);
        let mut worst_under = 0.0f64;
        let mut worst_over = 0.0f64;
        for step in 0..3000 {
            let v = rng.random_range(0..400u64);
            est.ingest(v);
            exact.push(v);
            if step > 300 {
                let truth = exact.h() as f64;
                let got = est.estimate() as f64;
                if truth > 10.0 {
                    worst_under = worst_under.max((truth - got) / truth);
                    worst_over = worst_over.max((got - truth) / truth);
                }
            }
        }
        // Combined grid + DGIM error budget.
        let budget = e_grid + 2.0 * e_win + 0.02;
        assert!(worst_under <= budget, "under {worst_under} > {budget}");
        assert!(worst_over <= 2.0 * e_win + 0.02, "over {worst_over}");
    }

    #[test]
    fn regime_change_is_followed() {
        // High-impact era, then low-impact era: the estimate follows
        // with the window's lag.
        let w = 500u64;
        let mut est = SlidingHIndex::new(eps(0.2), w, 0.05);
        let mut exact = Exact::new(w as usize);
        for _ in 0..1000 {
            est.ingest(800);
            exact.push(800);
        }
        assert!(est.estimate() as f64 >= 0.7 * exact.h() as f64);
        for _ in 0..1000 {
            est.ingest(20);
            exact.push(20);
        }
        let truth = exact.h(); // now 20
        assert_eq!(truth, 20);
        let got = est.estimate();
        assert!(
            (got as f64 - truth as f64).abs() <= 0.35 * truth as f64,
            "got {got} truth {truth}"
        );
    }

    #[test]
    fn space_scales_with_levels_and_window_log() {
        use hindex_common::SpaceUsage;
        let mut est = SlidingHIndex::new(eps(0.2), 1 << 14, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..(1 << 15) {
            est.ingest(rng.random_range(0..1_000_000));
        }
        // levels ≈ 76 at ε = 0.2 up to 1e6; each DGIM is O(k log W)
        // buckets ≈ 100 words.
        assert!(est.space_words() < 76 * 150, "{} words", est.space_words());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SlidingHIndex::new(eps(0.2), 0, 0.1);
    }

    #[test]
    fn batch_ingest_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(11);
        // Mix of zeros (level None), small, and huge values so some
        // batches create counters mid-flight and some leave high
        // counters untouched for long stretches.
        let values: Vec<u64> = (0..4000)
            .map(|_| match rng.random_range(0..4u32) {
                0 => 0,
                1 => rng.random_range(1..20),
                2 => rng.random_range(20..5_000),
                _ => rng.random_range(5_000..1_000_000),
            })
            .collect();
        let mut scalar = SlidingHIndex::new(eps(0.15), 256, 0.1);
        let mut batched = SlidingHIndex::new(eps(0.15), 256, 0.1);
        for &v in &values {
            scalar.ingest(v);
        }
        // Uneven chunk sizes exercise the end-of-batch re-sync.
        for chunk in values.chunks(173) {
            batched.ingest_batch(chunk);
        }
        assert_eq!(batched.time, scalar.time);
        assert_eq!(batched.counters, scalar.counters);
        assert_eq!(batched.estimate(), scalar.estimate());
    }

    #[test]
    fn batch_of_all_zero_levels_only_advances_time() {
        let mut scalar = SlidingHIndex::new(eps(0.2), 64, 0.1);
        let mut batched = SlidingHIndex::new(eps(0.2), 64, 0.1);
        scalar.ingest(50); // materialise some counters
        batched.ingest_batch(&[50]);
        for _ in 0..200 {
            scalar.ingest(0);
        }
        batched.ingest_batch(&vec![0u64; 200]);
        assert_eq!(batched.counters, scalar.counters);
        assert_eq!(batched.estimate(), scalar.estimate());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        #[test]
        fn prop_window_h_tracked(
            values in proptest::collection::vec(0u64..2_000, 100..800),
            w in 50u64..200,
        ) {
            let e_grid = 0.2;
            let e_win = 0.05;
            let mut est = SlidingHIndex::new(eps(e_grid), w, e_win);
            let mut exact = Exact::new(w as usize);
            for &v in &values {
                est.ingest(v);
                exact.push(v);
            }
            let truth = exact.h() as f64;
            let got = est.estimate() as f64;
            proptest::prop_assert!(got >= (1.0 - e_grid - 2.0 * e_win) * truth - 2.0,
                "got {} truth {}", got, truth);
            proptest::prop_assert!(got <= (1.0 + 2.0 * e_win) * truth + 2.0,
                "got {} truth {}", got, truth);
        }
    }
}
