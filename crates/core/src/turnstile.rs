//! Turnstile H-index: responses can be retracted.
//!
//! Footnote 1 of the paper notes the discussion "can be extended to the
//! setting … when responses can be a mix of positive and negative".
//! The cash-register algorithms almost get there for free — every
//! sketch in Algorithm 6 is a *linear* sketch — except the distinct
//! counter, which is insert-only. This module completes the extension:
//!
//! * the ℓ₀-sampler bank is reused unchanged (deletions supported);
//! * `y` comes from the turnstile [`hindex_sketch::L0Norm`] instead of
//!   BJKST;
//! * at decode time, a sampled paper with net count `≤ 0` counts
//!   toward the sampled population `x` (it is a non-zero coordinate if
//!   negative) but never toward a threshold.
//!
//! Semantics: the H-index of the vector `max(V, 0)` — papers whose
//! responses were all retracted (or went net-negative) contribute
//! nothing, and the estimate can *decrease* over time, which no
//! cash-register algorithm allows.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer, FRAME_OVERHEAD};
use hindex_common::{
    Delta, Epsilon, Estimate, EstimatorParams, ExpGrid, Mergeable, SpaceUsage,
    TurnstileEstimator,
};
use hindex_sketch::{L0Norm, L0Sampler, L0SamplerParams};
use rand::Rng;
use std::collections::HashMap;

/// Parameters for [`TurnstileHIndex`], usable with
/// [`EstimatorParams::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurnstileParams {
    /// Accuracy `ε`.
    pub epsilon: Epsilon,
    /// Failure probability `δ`.
    pub delta: Delta,
    /// Overrides the Theorem 14 sampler count when set.
    pub samplers_override: Option<usize>,
}

impl TurnstileParams {
    /// Parameters with the Theorem 14 additive-mode sampler count.
    #[must_use]
    pub fn new(epsilon: Epsilon, delta: Delta) -> Self {
        Self { epsilon, delta, samplers_override: None }
    }
}

impl EstimatorParams for TurnstileParams {
    type Output = TurnstileHIndex;

    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> TurnstileHIndex {
        match self.samplers_override {
            Some(x) => TurnstileHIndex::with_sampler_count(self.epsilon, self.delta, x, rng),
            None => TurnstileHIndex::new(self.epsilon, self.delta, rng),
        }
    }
}

/// Streaming H-index estimator under turnstile updates
/// (`V[p] += δ`, `δ` possibly negative).
#[derive(Debug, Clone)]
pub struct TurnstileHIndex {
    epsilon: Epsilon,
    grid: ExpGrid,
    samplers: Vec<L0Sampler>,
    norm: L0Norm,
}

impl TurnstileHIndex {
    /// Creates the estimator with the Theorem 14 additive-mode sampler
    /// count (`⌈3ε⁻² ln(2/δ)⌉`); the guarantee is `|ĥ − h*| ≤ ε·D` whp
    /// with `D` the number of non-zero coordinates.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(epsilon: Epsilon, delta: Delta, rng: &mut R) -> Self {
        let e = epsilon.get();
        let x = (3.0 / (e * e) * (2.0 / delta.get()).ln()).ceil() as usize;
        Self::with_sampler_count(epsilon, delta, x, rng)
    }

    /// Explicit sampler count (experiments/testing).
    #[must_use]
    pub fn with_sampler_count<R: Rng + ?Sized>(
        epsilon: Epsilon,
        delta: Delta,
        x: usize,
        rng: &mut R,
    ) -> Self {
        let params = L0SamplerParams::default();
        Self {
            epsilon,
            grid: ExpGrid::new(epsilon.get()),
            samplers: (0..x.max(1)).map(|_| L0Sampler::new(params, rng)).collect(),
            norm: L0Norm::new(epsilon.get().min(0.25), delta.split(2).get(), rng),
        }
    }

    /// Applies the update `V[index] += delta` (`delta` may be
    /// negative).
    pub fn update(&mut self, index: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        for s in &mut self.samplers {
            s.update(index, delta);
        }
        self.norm.update(index, delta);
    }

    /// Applies a batch of updates; state-identical to looping
    /// [`Self::update`]. Duplicate indices are coalesced first — exact
    /// cancellation in linear sketches makes the net delta equivalent —
    /// so every sampler (and the norm sketch) pays one batched-kernel
    /// pass over the distinct indices instead of one scalar pass per
    /// raw update.
    pub fn update_batch(&mut self, updates: &[(u64, i64)]) {
        let mut net: HashMap<u64, i128> = HashMap::with_capacity(updates.len());
        for &(i, d) in updates {
            if d != 0 {
                *net.entry(i).or_default() += i128::from(d);
            }
        }
        let mut coalesced: Vec<(u64, i64)> = Vec::with_capacity(net.len());
        for (i, mut v) in net {
            // A net delta can overflow i64 only if the caller fed
            // ≥ 2⁶³ worth of mass in one batch; chunk it rather than
            // silently truncate. The clamp covers both extremes exactly:
            // a batch of pure i64::MIN deltas nets to k·i64::MIN, which
            // peels off in i64::MIN-sized chunks with no overflow (the
            // i128 accumulator cannot itself overflow before ~2⁶⁴
            // updates). HashMap iteration order varies per process, but
            // the sketches are linear over the exact field, so any
            // emission order produces bit-identical state.
            while v != 0 {
                let chunk = v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
                coalesced.push((i, chunk));
                v -= i128::from(chunk);
            }
        }
        if coalesced.is_empty() {
            return;
        }
        for s in &mut self.samplers {
            s.update_batch(&coalesced);
        }
        self.norm.update_batch(&coalesced);
    }

    /// Number of ℓ₀-samplers in the bank.
    #[must_use]
    pub fn num_samplers(&self) -> usize {
        self.samplers.len()
    }

    /// FNV digest over the full sampler bank and norm sketch state, for
    /// bit-identity assertions (the engine concurrency audit checks
    /// that shard-merge results are identical across schedules). Only
    /// compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        hindex_sketch::digest::fnv1a(
            self.samplers
                .iter()
                .map(L0Sampler::state_digest)
                .chain(std::iter::once(self.norm.state_digest())),
        )
    }

    /// Current estimate of `h*(max(V, 0))`.
    #[must_use]
    pub fn estimate(&self) -> u64 {
        // All successful samples, signed: negatives stay in the
        // denominator (they are non-zero coordinates).
        let samples: Vec<(u64, i64)> =
            self.samplers.iter().filter_map(L0Sampler::sample).collect();
        if samples.is_empty() {
            return 0;
        }
        let x = samples.len() as f64;
        let y = self.norm.estimate() as f64;
        let eps = self.epsilon.get();
        let max_count = samples.iter().map(|&(_, v)| v.max(0) as u64).max().unwrap_or(0);
        let mut best = 0u64;
        let mut level = 0u32;
        loop {
            let t_int = self.grid.int_threshold(level);
            if t_int > max_count {
                break;
            }
            let hits = samples
                .iter()
                .filter(|&&(_, v)| v > 0 && v as u64 >= t_int)
                .count() as f64;
            let r = hits * y / x;
            if r >= self.grid.threshold(level) * (1.0 - eps) {
                best = t_int;
            }
            level += 1;
        }
        best
    }
}

/// Payload: `ε`, the sampler bank as nested frames, and the nested
/// ℓ₀-norm sketch. The grid is a pure function of `ε` and is rebuilt
/// rather than stored; `ε` itself is re-validated through
/// [`Epsilon::new`] so a corrupted float cannot smuggle in a NaN grid.
impl Snapshot for TurnstileHIndex {
    const TAG: u8 = 16;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_f64(self.epsilon.get());
        w.put_usize(self.samplers.len());
        for s in &self.samplers {
            w.put_nested(s);
        }
        w.put_nested(&self.norm);
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let epsilon = Epsilon::new(r.get_f64()?)
            .map_err(|_| SnapshotError::Invalid("epsilon outside (0, 1)"))?;
        let count = r.get_count(FRAME_OVERHEAD)?;
        if count == 0 {
            return Err(SnapshotError::Invalid("need at least one sampler"));
        }
        let mut samplers = Vec::with_capacity(count);
        for _ in 0..count {
            samplers.push(r.get_nested::<L0Sampler>()?);
        }
        let norm = r.get_nested::<L0Norm>()?;
        Ok(Self {
            epsilon,
            grid: ExpGrid::new(epsilon.get()),
            samplers,
            norm,
        })
    }
}

/// Merges a same-randomness clone (sharded ingestion). Both the
/// sampler bank and the ℓ₀-norm sketch are linear, so the merged state
/// is bit-identical to ingesting the concatenated update streams —
/// including interleaved retractions landing on different shards.
impl Mergeable for TurnstileHIndex {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.samplers.len(), other.samplers.len(), "config mismatch");
        for (a, b) in self.samplers.iter_mut().zip(&other.samplers) {
            a.merge(b);
        }
        self.norm.merge(&other.norm);
    }
}

impl SpaceUsage for TurnstileHIndex {
    fn space_words(&self) -> usize {
        self.samplers.iter().map(SpaceUsage::space_words).sum::<usize>()
            + self.norm.space_words()
    }

    fn scratch_words(&self) -> usize {
        self.samplers.iter().map(SpaceUsage::scratch_words).sum::<usize>()
            + self.norm.scratch_words()
    }
}

impl Estimate for TurnstileHIndex {
    fn estimate(&self) -> u64 {
        Self::estimate(self)
    }
}

/// The trait face of the inherent methods, for generic turnstile
/// plumbing (`hindex-engine`'s sharded ingestion in particular).
impl TurnstileEstimator for TurnstileHIndex {
    fn ingest(&mut self, index: u64, delta: i64) {
        Self::update(self, index, delta);
    }

    fn ingest_batch(&mut self, updates: &[(u64, i64)]) {
        Self::update_batch(self, updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn estimator(seed: u64) -> TurnstileHIndex {
        TurnstileHIndex::new(
            Epsilon::new(0.25).unwrap(),
            Delta::new(0.1).unwrap(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(estimator(0).estimate(), 0);
    }

    #[test]
    fn insert_only_matches_cash_register_semantics() {
        // 30 papers with 40 citations each: h = 30, D = 30 → the
        // additive slack ε·D is tight enough to pin the estimate.
        let mut ok = 0;
        for seed in 0..8 {
            let mut est = estimator(seed);
            for p in 0..30u64 {
                est.update(p, 40);
            }
            let got = est.estimate();
            if (got as f64 - 30.0).abs() <= 0.25 * 30.0 {
                ok += 1;
            }
        }
        assert!(ok >= 7, "only {ok}/8 within bounds");
    }

    #[test]
    fn retractions_lower_the_index() {
        let mut ok = 0;
        for seed in 0..8 {
            let mut est = estimator(seed);
            // 40 strong papers...
            for p in 0..40u64 {
                est.update(p, 50);
            }
            let before = est.estimate();
            // ...then 30 of them are fully retracted.
            for p in 0..30u64 {
                est.update(p, -50);
            }
            let after = est.estimate();
            // Truth: h = 40 before, h = 10 after.
            if (before as f64 - 40.0).abs() <= 10.0 && (after as f64 - 10.0).abs() <= 5.0 {
                ok += 1;
            }
        }
        assert!(ok >= 6, "retraction semantics held in only {ok}/8 runs");
    }

    #[test]
    fn net_negative_papers_never_count() {
        for seed in 0..5 {
            let mut est = estimator(seed);
            for p in 0..20u64 {
                est.update(p, 10);
                est.update(p, -25); // net −15
            }
            assert_eq!(est.estimate(), 0, "seed {seed}");
        }
    }

    #[test]
    fn full_cancellation_returns_to_zero() {
        let mut est = estimator(9);
        for p in 0..25u64 {
            est.update(p, 30);
        }
        assert!(est.estimate() > 0);
        for p in 0..25u64 {
            est.update(p, -30);
        }
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        let proto = estimator(21);
        let mut scalar = proto.clone();
        let mut batched = proto.clone();
        let updates: Vec<(u64, i64)> = (0..300u64)
            .map(|i| (i % 37, if i % 5 == 0 { -3 } else { 4 }))
            .collect();
        for &(i, d) in &updates {
            scalar.update(i, d);
        }
        batched.update_batch(&updates);
        // Coalescing + batched kernels are state-identical, so the
        // estimates agree exactly, not just statistically.
        assert_eq!(scalar.estimate(), batched.estimate());
    }

    #[test]
    fn scratch_reported_separately_from_space() {
        let est = estimator(22);
        assert!(est.scratch_words() > 0);
        // 2048-word ladder per sampler core: scratch dwarfs none of the
        // paper-bound accounting (space_words must not include it).
        assert!(est.space_words() > 0);
    }

    #[test]
    fn sharded_merge_equals_single_stream() {
        let mut rng = StdRng::seed_from_u64(10);
        let proto = TurnstileHIndex::new(
            Epsilon::new(0.3).unwrap(),
            Delta::new(0.2).unwrap(),
            &mut rng,
        );
        let mut whole = proto.clone();
        let mut a = proto.clone();
        let mut b = proto.clone();
        for p in 0..30u64 {
            whole.update(p, 20);
            if p % 2 == 0 {
                a.update(p, 20);
            } else {
                b.update(p, 20);
            }
        }
        // Retraction lands on the "wrong" shard.
        whole.update(0, -20);
        b.update(0, -20);
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }
}
