//! Algorithms 3 + 4 / Theorem 9: random-order streams.
//!
//! When the aggregate stream is a uniformly random permutation of the
//! underlying vector, the H-index can be `(1±ε)`-estimated from a short
//! *prefix*, in constant words.
//!
//! Structure (Algorithm 3): two branches run in parallel and the final
//! answer is their maximum.
//!
//! * **Small regime** (`h* ≤ β/ε`): a [`ShiftingWindow`] capped at `β`
//!   — every word of this branch only needs `log(β/ε)` bits.
//! * **Large regime** (`h* ≥ β/ε`, Algorithm 4): guesses
//!   `g_i = n/(1+ε)ⁱ` descend from `n`. The stream is cut into
//!   consecutive segments, segment `i` of length `Lᵢ = ⌈β(1+ε)ⁱ⌉`;
//!   guess `i` is scored on the window `Wᵢ = sᵢ₋₁ ∪ sᵢ` (the
//!   pseudocode's `c ← c'` carry implements the overlap), so that if
//!   `h* ≈ g_i` the expected number of window elements `≥ g_i` is
//!   `x = β(2+ε)/(1+ε)`. The first guess whose count reaches
//!   `(1−ε/3)·x` is accepted.
//!
//! **Deviation (documented in DESIGN.md):** the paper's acceptance test
//! is two-sided (`c ≤ (1+ε)x` as well). A two-sided test cannot accept
//! on vectors where the count jumps discontinuously across the true
//! `h*` (e.g. all elements equal: counts go from `≈ 0` straight past
//! `(1+ε)x`), so we accept on the lower bound alone, which the
//! concentration argument actually needs: guesses `g ≥ (1+ε)h*` have
//! expected count `≤ x/(1+ε) < (1−ε/3)x` and are rejected whp, while
//! any guess `g ≤ h*` has expected count `≥ x` and is accepted whp.
//! `β` defaults to the paper's `150 ε⁻³ ln ln n` and is overridable —
//! experiment E3 measures how much smaller β can go in practice.

use crate::shifting_window::ShiftingWindow;
use hindex_common::{AggregateEstimator, Delta, Epsilon, Estimate, SpaceUsage};

/// Configuration for [`RandomOrderEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct RandomOrderParams {
    /// Accuracy `ε`.
    pub epsilon: Epsilon,
    /// Failure probability `δ` (enters only through the default β).
    pub delta: Delta,
    /// Stream length `n` (the paper's Algorithm 4 needs the vector
    /// dimension to form its guesses).
    pub n: u64,
    /// Override for the paper's `β = 150 ε⁻³ ln ln n`. Smaller values
    /// shrink both the constant-space branch's cap and the windows.
    pub beta_override: Option<u64>,
}

impl RandomOrderParams {
    /// Standard parameters with the paper's β.
    #[must_use]
    pub fn new(epsilon: Epsilon, delta: Delta, n: u64) -> Self {
        Self {
            epsilon,
            delta,
            n,
            beta_override: None,
        }
    }

    /// The β in effect.
    #[must_use]
    pub fn beta(&self) -> u64 {
        if let Some(b) = self.beta_override {
            return b.max(1);
        }
        let e = self.epsilon.get();
        let lnln = (self.n.max(16) as f64).ln().ln().max(1.0);
        (150.0 * e.powi(-3) * lnln).ceil() as u64
    }
}

/// `(1±ε)` whp H-index estimator for uniformly random-order aggregate
/// streams (Algorithm 3 = capped Algorithm 2 ∥ Algorithm 4).
#[derive(Debug, Clone)]
pub struct RandomOrderEstimator {
    params: RandomOrderParams,
    /// Small-regime branch.
    small: ShiftingWindow,
    // ---- Algorithm 4 state: the "six words" ----
    /// Current guess index `i`.
    guess: u32,
    /// Elements consumed so far.
    position: u64,
    /// End position (exclusive) of the current segment.
    segment_end: u64,
    /// Count of window elements `≥ g_i` (carried across the segment
    /// pair).
    c: u64,
    /// Count of current-segment elements `≥ g_{i+1}`.
    c_next: u64,
    /// Accepted output of Algorithm 4 (0 until acceptance).
    accepted: u64,
    /// Whether Algorithm 4 is still scanning.
    active: bool,
}

impl RandomOrderEstimator {
    /// Creates the estimator.
    ///
    /// # Panics
    ///
    /// Panics if `params.n == 0`.
    #[must_use]
    pub fn new(params: RandomOrderParams) -> Self {
        assert!(params.n > 0, "the stream length must be known and positive");
        // The small branch must cover everything Algorithm 4 does not,
        // i.e. h* up to β/ε (Theorem 9's case split; its words are
        // "log(β/ε) bits" for exactly this reason).
        let beta = params.beta();
        let cap = (beta as f64 / params.epsilon.get()).ceil() as u64;
        let small = ShiftingWindow::with_cap(params.epsilon, cap);
        let mut est = Self {
            params,
            small,
            guess: 0,
            position: 0,
            segment_end: 0,
            c: 0,
            c_next: 0,
            accepted: 0,
            active: true,
        };
        est.segment_end = est.segment_len(0);
        est
    }

    fn segment_len(&self, i: u32) -> u64 {
        let beta = self.params.beta() as f64;
        let base = self.params.epsilon.base();
        (beta * base.powi(i as i32)).ceil() as u64
    }

    /// Guess value `g_i = n/(1+ε)ⁱ`.
    fn guess_value(&self, i: u32) -> f64 {
        self.params.n as f64 / self.params.epsilon.base().powi(i as i32)
    }

    /// Target count `x = β(2+ε)/(1+ε)`.
    fn x(&self) -> f64 {
        let e = self.params.epsilon.get();
        self.params.beta() as f64 * (2.0 + e) / (1.0 + e)
    }

    /// The β in effect (exposed for experiments).
    #[must_use]
    pub fn beta(&self) -> u64 {
        self.params.beta()
    }

    /// Whether Algorithm 4 accepted a guess (the large-h* regime
    /// answer).
    #[must_use]
    pub fn large_regime_accepted(&self) -> bool {
        self.accepted > 0
    }
}

impl Estimate for RandomOrderEstimator {
    fn estimate(&self) -> u64 {
        self.accepted.max(self.small.estimate())
    }
}

impl AggregateEstimator for RandomOrderEstimator {
    fn ingest(&mut self, value: u64) {
        self.small.ingest(value);
        if !self.active {
            return;
        }
        let v = value as f64;
        if v >= self.guess_value(self.guess) {
            self.c += 1;
        }
        if v >= self.guess_value(self.guess + 1) {
            self.c_next += 1;
        }
        self.position += 1;
        if self.position >= self.segment_end {
            // Segment i finished: test guess i.
            let bar = (1.0 - self.params.epsilon.get() / 3.0) * self.x();
            if self.c as f64 >= bar {
                self.accepted = self.guess_value(self.guess).floor() as u64;
                self.active = false;
                return;
            }
            // Move to guess i+1; its window carries this segment's
            // count against g_{i+1}.
            self.guess += 1;
            self.c = self.c_next;
            self.c_next = 0;
            self.segment_end = self.position + self.segment_len(self.guess);
            // Guesses below the β/ε bar are the small branch's job.
            let floor_guess = self.params.beta() as f64 / self.params.epsilon.get();
            if self.guess_value(self.guess) < floor_guess || self.position >= self.params.n {
                self.active = false;
            }
        }
    }
}

impl SpaceUsage for RandomOrderEstimator {
    fn space_words(&self) -> usize {
        // Algorithm 4: guess, position, segment_end, c, c_next,
        // accepted — the paper's six words — plus the capped shifting
        // window.
        6 + self.small.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;
    use hindex_stream::generator::planted_h_corpus;
    use hindex_stream::StreamOrder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(e: f64, n: u64, beta: u64) -> RandomOrderParams {
        RandomOrderParams {
            epsilon: Epsilon::new(e).unwrap(),
            delta: Delta::new(0.05).unwrap(),
            n,
            beta_override: Some(beta),
        }
    }

    fn run_on(values: &[u64], p: RandomOrderParams) -> u64 {
        let mut est = RandomOrderEstimator::new(p);
        est.extend_from(values.iter().copied());
        est.estimate()
    }

    #[test]
    fn paper_beta_formula() {
        let p = RandomOrderParams::new(
            Epsilon::new(0.2).unwrap(),
            Delta::new(0.05).unwrap(),
            1_000_000,
        );
        // 150 · 0.2⁻³ · ln ln 1e6 ≈ 150 · 125 · 2.63 ≈ 49 000.
        let beta = p.beta();
        assert!((45_000..55_000).contains(&beta), "beta {beta}");
    }

    #[test]
    fn small_h_handled_by_capped_window() {
        // h* well below β/ε: Algorithm 2 branch answers.
        let e = 0.2;
        let corpus = planted_h_corpus(40, 5_000, 3);
        let mut values = corpus.citation_counts();
        let mut rng = StdRng::seed_from_u64(1);
        StreamOrder::Random.apply(&mut values, &mut rng);
        let got = run_on(&values, params(e, values.len() as u64, 1_000));
        let h = h_index(&values);
        assert_eq!(h, 40);
        assert!(got <= h && got as f64 >= (1.0 - e) * h as f64, "got {got}");
    }

    #[test]
    fn large_h_accepted_by_windows() {
        // h* far above β/ε with a small β override: Algorithm 4 accepts.
        let e = 0.2;
        let n = 40_000usize;
        let h = 20_000u64; // half the papers are in the support
        let corpus = planted_h_corpus(h, n, 7);
        for seed in 0..10u64 {
            let mut values = corpus.citation_counts();
            let mut rng = StdRng::seed_from_u64(seed);
            StreamOrder::Random.apply(&mut values, &mut rng);
            let p = params(e, n as u64, 400); // β/ε = 2000 ≪ h*
            let mut est = RandomOrderEstimator::new(p);
            est.extend_from(values.iter().copied());
            let got = est.estimate();
            assert!(
                (got as f64) >= (1.0 - e) * h as f64 && (got as f64) <= (1.0 + e) * h as f64,
                "seed {seed}: got {got} vs h {h}"
            );
        }
    }

    #[test]
    fn all_equal_vector_is_estimated() {
        // The degenerate case that breaks a two-sided acceptance test:
        // every element equals h*.
        let e = 0.2;
        let n = 30_000u64;
        let h = 10_000u64;
        let mut values = vec![h; h as usize];
        values.extend(vec![0u64; (n - h) as usize]);
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v = values.clone();
            StreamOrder::Random.apply(&mut v, &mut rng);
            let got = run_on(&v, params(e, n, 300));
            assert!(
                (got as f64) >= (1.0 - e) * h as f64 && (got as f64) <= (1.0 + e) * h as f64,
                "seed {seed}: got {got}"
            );
        }
    }

    #[test]
    fn never_wildly_over_on_random_order() {
        // Acceptance must not trigger while guesses are far above h*.
        let e = 0.2;
        let n = 50_000usize;
        let h = 5_000u64;
        let corpus = planted_h_corpus(h, n, 11);
        for seed in 0..10u64 {
            let mut values = corpus.citation_counts();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            StreamOrder::Random.apply(&mut values, &mut rng);
            let got = run_on(&values, params(e, n as u64, 400));
            assert!(
                (got as f64) <= (1.0 + e) * h as f64,
                "seed {seed}: got {got} ≫ h {h}"
            );
        }
    }

    #[test]
    fn six_words_plus_capped_window() {
        let p = params(0.2, 1_000_000, 500);
        let est = RandomOrderEstimator::new(p);
        // The Algorithm 4 state is exactly six words; the rest is the
        // capped small-regime window.
        let words = est.space_words();
        let window_words = ShiftingWindow::with_cap(Epsilon::new(0.2).unwrap(), 500).space_words();
        assert_eq!(words, 6 + window_words);
    }

    #[test]
    fn zero_stream() {
        let p = params(0.3, 100, 10);
        let got = run_on(&vec![0u64; 100], p);
        assert_eq!(got, 0);
    }

    #[test]
    #[should_panic(expected = "must be known and positive")]
    fn zero_n_panics() {
        let _ = RandomOrderEstimator::new(params(0.2, 0, 10));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        #[test]
        fn prop_random_order_guarantee(
            h_thousands in 5u64..20,
            seed in proptest::num::u64::ANY,
        ) {
            let e = 0.25;
            let h = h_thousands * 1000;
            let n = (4 * h) as usize;
            let corpus = planted_h_corpus(h, n, seed);
            let mut values = corpus.citation_counts();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
            StreamOrder::Random.apply(&mut values, &mut rng);
            let got = run_on(&values, params(e, n as u64, 300));
            proptest::prop_assert!((got as f64) >= (1.0 - e) * h as f64, "got {} h {}", got, h);
            proptest::prop_assert!((got as f64) <= (1.0 + e) * h as f64, "got {} h {}", got, h);
        }
    }
}
