//! Algorithms 5 + 6 / Theorem 14: the cash-register model.
//!
//! Here the stream is *unaggregated*: updates `(p, z)` meaning paper
//! `p` gained `z` citations, in arbitrary interleaving. No counter per
//! paper can be afforded, so the algorithm samples:
//!
//! * `x` independent [ℓ₀-samplers](hindex_sketch::L0Sampler) each
//!   deliver, at query time, a (near-)uniform random *cited paper*
//!   together with its **exact** final citation count (sparse recovery
//!   gives values, which step 4's `V[j] ≥ (1+ε)ⁱ` tests need);
//! * a [BJKST](hindex_sketch::Bjkst) sketch delivers `y`, a `(1±ε)`
//!   estimate of the number of distinct cited papers (the paper's
//!   step 2, citing \[10\]).
//!
//! For each level `i`, `r_i = |{j ∈ X : V[j] ≥ (1+ε)ⁱ}| · y / x` scales
//! the sampled-support fraction back to absolute counts; the estimate is
//! the largest `(1+ε)ⁱ` with `r_i ≥ (1+ε)ⁱ(1−ε)`.
//!
//! Sampler count (Theorem 14):
//!
//! * **additive** mode: `x = ⌈3ε⁻² ln(2/δ)⌉` gives
//!   `|ĥ − h*| ≤ ε·D` whp, where `D` is the number of distinct cited
//!   papers (`D ≤ n`, so this is at least as strong as the paper's
//!   `ε·n` statement);
//! * **multiplicative** mode: given a promised lower bound `h* ≥ β` and
//!   an upper bound `D ≤ D_max`, `x = ⌈3ε⁻² ln(2/δ) · D_max/β⌉` makes
//!   the per-level Chernoff argument relative.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer, FRAME_OVERHEAD};
use hindex_common::{
    BankCounters, CashRegisterEstimator, Delta, Epsilon, Estimate, EstimatorParams, ExpGrid,
    Mergeable, SpaceUsage,
};
use hindex_hashing::{from_i64, mersenne_mul, PowerLadder};
use hindex_sketch::distinct::DistinctCounter;
use hindex_sketch::{BankScratch, Bjkst, L0Sampler, L0SamplerParams};
use rand::Rng;
use std::sync::Arc;

/// Tile size of the bank ingest kernel: matches the sparse-recovery
/// batch tile, so one column-hash sweep per row serves a whole tile.
const BANK_TILE: usize = 256;

/// Which guarantee the sampler count is sized for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CashRegisterParams {
    /// Additive error `ε·D` with probability `1 − δ`.
    Additive {
        /// Accuracy `ε`.
        epsilon: Epsilon,
        /// Failure probability `δ`.
        delta: Delta,
    },
    /// Multiplicative error `ε·h*` with probability `1 − δ`, valid when
    /// `h* ≥ beta` and the number of distinct cited papers stays below
    /// `distinct_bound`.
    Multiplicative {
        /// Accuracy `ε`.
        epsilon: Epsilon,
        /// Failure probability `δ`.
        delta: Delta,
        /// Promised lower bound `β ≤ h*`.
        beta: u64,
        /// Upper bound on distinct cited papers.
        distinct_bound: u64,
    },
}

impl CashRegisterParams {
    /// Accuracy parameter.
    #[must_use]
    pub fn epsilon(&self) -> Epsilon {
        match *self {
            CashRegisterParams::Additive { epsilon, .. }
            | CashRegisterParams::Multiplicative { epsilon, .. } => epsilon,
        }
    }

    /// Failure probability.
    #[must_use]
    pub fn delta(&self) -> Delta {
        match *self {
            CashRegisterParams::Additive { delta, .. }
            | CashRegisterParams::Multiplicative { delta, .. } => delta,
        }
    }

    /// The number of ℓ₀-sampler instances Theorem 14 asks for.
    #[must_use]
    pub fn num_samplers(&self) -> usize {
        match *self {
            CashRegisterParams::Additive { epsilon, delta } => {
                let e = epsilon.get();
                (3.0 / (e * e) * (2.0 / delta.get()).ln()).ceil() as usize
            }
            CashRegisterParams::Multiplicative {
                epsilon,
                delta,
                beta,
                distinct_bound,
            } => {
                assert!(beta >= 1, "beta must be positive");
                let e = epsilon.get();
                let scale = (distinct_bound.max(1) as f64 / beta as f64).max(1.0);
                (3.0 / (e * e) * (2.0 / delta.get()).ln() * scale).ceil() as usize
            }
        }
    }
}

/// Streaming H-index estimator for cash-register update streams
/// (Algorithm 6 with the sampler counts of Theorem 14).
#[derive(Debug, Clone)]
pub struct CashRegisterHIndex {
    params: CashRegisterParams,
    grid: ExpGrid,
    samplers: Vec<L0Sampler>,
    distinct: Bjkst,
    /// Largest value a single update has carried (caps the level scan).
    max_seen: u64,
    /// Working buffers for the bank tile kernel — derived scratch, not
    /// sketch state (excluded from snapshots and digests).
    scratch: BankScratch,
    /// Bank-batching telemetry — operational counters, not sketch
    /// state (excluded from snapshots and digests; summed on merge).
    counters: BankCounters,
}

impl CashRegisterHIndex {
    /// Creates the estimator; draws all sketch randomness from `rng`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(params: CashRegisterParams, rng: &mut R) -> Self {
        Self::build(params, params.num_samplers(), rng)
    }

    /// Creates the estimator with an explicit sampler count instead of
    /// the Theorem 14 formula — used by the E5 experiment to sweep the
    /// space/accuracy trade-off.
    #[must_use]
    pub fn with_sampler_count<R: Rng + ?Sized>(
        params: CashRegisterParams,
        x: usize,
        rng: &mut R,
    ) -> Self {
        Self::build(params, x.max(1), rng)
    }

    fn build<R: Rng + ?Sized>(params: CashRegisterParams, x: usize, rng: &mut R) -> Self {
        // Each individual sampler may fail with constant probability;
        // the Chernoff estimate over x samplers absorbs that, so default
        // per-sampler parameters suffice.
        let sampler_params = L0SamplerParams::default();
        // One fingerprint ladder serves the whole bank: the bank
        // kernel then evaluates each update's fingerprint term once
        // for all x samplers. `with_shared_ladder` burns the point
        // draw `new` would make, so the bank consumes the same RNG
        // stream as independent per-sampler construction.
        let mut samplers = Vec::with_capacity(x);
        let first = L0Sampler::new(sampler_params, rng);
        let ladder = Arc::clone(first.ladder_arc());
        samplers.push(first);
        for _ in 1..x {
            samplers.push(L0Sampler::with_shared_ladder(
                sampler_params,
                Arc::clone(&ladder),
                rng,
            ));
        }
        let distinct = Bjkst::new(
            params.epsilon().get().min(0.25),
            params.delta().split(2).get(),
            rng,
        );
        Self {
            params,
            grid: ExpGrid::new(params.epsilon().get()),
            samplers,
            distinct,
            max_seen: 0,
            scratch: BankScratch::default(),
            counters: BankCounters::default(),
        }
    }

    /// The bank-wide shared ladder, when every sampler still shares
    /// one — always true for freshly built estimators. Snapshots
    /// written before bank sharing restore per-sampler points; those
    /// banks return `None` and take the per-sampler batch path.
    fn bank_ladder(&self) -> Option<Arc<PowerLadder>> {
        let first = self.samplers.first()?.ladder_arc();
        self.samplers[1..]
            .iter()
            .all(|s| Arc::ptr_eq(s.ladder_arc(), first))
            .then(|| Arc::clone(first))
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> CashRegisterParams {
        self.params
    }

    /// Number of ℓ₀-sampler instances in use.
    #[must_use]
    pub fn num_samplers(&self) -> usize {
        self.samplers.len()
    }

    /// FNV digest over the sampler bank, the distinct sketch, and
    /// `max_seen`, for bit-identity assertions (checkpoint/restore
    /// tests in particular). Only compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        hindex_sketch::digest::fnv1a(
            self.samplers
                .iter()
                .map(L0Sampler::state_digest)
                .chain([self.distinct.state_digest(), self.max_seen]),
        )
    }

    /// The sampled `(paper, exact count)` pairs currently recoverable —
    /// exposed for experiments that analyze the sampler ensemble.
    #[must_use]
    pub fn draw_samples(&self) -> Vec<(u64, u64)> {
        self.samplers
            .iter()
            .filter_map(|s| s.sample())
            .filter(|&(_, v)| v > 0)
            .map(|(i, v)| (i, v as u64))
            .collect()
    }
}

impl CashRegisterParams {
    /// Serialises the mode tag and numeric fields (snapshot helper).
    fn write_into_payload(&self, w: &mut Writer<'_>) {
        match *self {
            CashRegisterParams::Additive { epsilon, delta } => {
                w.put_u8(0);
                w.put_f64(epsilon.get());
                w.put_f64(delta.get());
            }
            CashRegisterParams::Multiplicative { epsilon, delta, beta, distinct_bound } => {
                w.put_u8(1);
                w.put_f64(epsilon.get());
                w.put_f64(delta.get());
                w.put_u64(beta);
                w.put_u64(distinct_bound);
            }
        }
    }

    /// Decodes what [`Self::write_into_payload`] wrote, re-validating
    /// every constructor invariant (`ε`, `δ` in range, `β ≥ 1`).
    fn read_from_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mode = r.get_u8()?;
        let epsilon = Epsilon::new(r.get_f64()?)
            .map_err(|_| SnapshotError::Invalid("epsilon outside (0, 1)"))?;
        let delta = Delta::new(r.get_f64()?)
            .map_err(|_| SnapshotError::Invalid("delta outside (0, 1)"))?;
        match mode {
            0 => Ok(CashRegisterParams::Additive { epsilon, delta }),
            1 => {
                let beta = r.get_u64()?;
                if beta == 0 {
                    return Err(SnapshotError::Invalid("beta must be positive"));
                }
                let distinct_bound = r.get_u64()?;
                Ok(CashRegisterParams::Multiplicative { epsilon, delta, beta, distinct_bound })
            }
            _ => Err(SnapshotError::Invalid("unknown cash-register mode")),
        }
    }
}

/// Payload: the parameter record (mode tag + numeric fields), the
/// sampler bank, the BJKST distinct sketch, and `max_seen`. The grid
/// is rebuilt from the re-validated `ε`.
impl Snapshot for CashRegisterHIndex {
    const TAG: u8 = 15;

    fn write_payload(&self, w: &mut Writer<'_>) {
        self.params.write_into_payload(w);
        w.put_usize(self.samplers.len());
        for s in &self.samplers {
            w.put_nested(s);
        }
        w.put_nested(&self.distinct);
        w.put_u64(self.max_seen);
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let params = CashRegisterParams::read_from_payload(r)?;
        let count = r.get_count(FRAME_OVERHEAD)?;
        if count == 0 {
            return Err(SnapshotError::Invalid("need at least one sampler"));
        }
        let mut samplers = Vec::with_capacity(count);
        for _ in 0..count {
            samplers.push(r.get_nested::<L0Sampler>()?);
        }
        // Re-establish bank-wide ladder sharing when the snapshot's
        // samplers carry one fingerprint point (anything this version
        // writes). Older snapshots with per-sampler points decode
        // unchanged and take the per-sampler batch path.
        if let Some(first) = samplers.first() {
            let ladder = Arc::clone(first.ladder_arc());
            if samplers[1..]
                .iter()
                .all(|s| s.ladder_arc().same_base(&ladder))
            {
                for s in &mut samplers[1..] {
                    let shared = s.share_ladder(&ladder);
                    debug_assert!(shared);
                }
            }
        }
        let distinct = r.get_nested::<Bjkst>()?;
        let max_seen = r.get_u64()?;
        Ok(Self {
            params,
            grid: ExpGrid::new(params.epsilon().get()),
            samplers,
            distinct,
            max_seen,
            scratch: BankScratch::default(),
            counters: BankCounters::default(),
        })
    }
}

/// Merges another estimator that shares this one's randomness (a
/// pre-update `clone` — the sketches are linear, so the merge equals
/// processing the concatenated update streams). This is the
/// sharded-firehose ingestion pattern `hindex-engine` builds on: clone
/// one estimator per shard, merge at query time.
impl Mergeable for CashRegisterHIndex {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.samplers.len(),
            other.samplers.len(),
            "estimators must share configuration"
        );
        for (a, b) in self.samplers.iter_mut().zip(&other.samplers) {
            a.merge(b);
        }
        self.distinct.merge(&other.distinct);
        self.max_seen = self.max_seen.max(other.max_seen);
        // Telemetry sums across shards so a merged estimator reports
        // the whole run's bank totals.
        self.counters.absorb(&other.counters);
    }
}

impl EstimatorParams for CashRegisterParams {
    type Output = CashRegisterHIndex;

    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> CashRegisterHIndex {
        CashRegisterHIndex::new(*self, rng)
    }
}

impl Estimate for CashRegisterHIndex {
    fn estimate(&self) -> u64 {
        let samples = self.draw_samples();
        if samples.is_empty() {
            return 0;
        }
        let x = samples.len() as f64;
        let y = self.distinct.estimate() as f64;
        let eps = self.params.epsilon().get();
        // Scan levels from 0 while thresholds stay below the largest
        // conceivable count; track the best qualifying threshold.
        let max_count = samples.iter().map(|&(_, v)| v).max().unwrap_or(0);
        let mut best = 0u64;
        let mut level = 0u32;
        loop {
            let t_int = self.grid.int_threshold(level);
            if t_int > max_count {
                break;
            }
            let hits = samples.iter().filter(|&&(_, v)| v >= t_int).count() as f64;
            let r = hits * y / x;
            if r >= self.grid.threshold(level) * (1.0 - eps) {
                best = t_int;
            }
            level += 1;
        }
        best
    }
}

impl CashRegisterEstimator for CashRegisterHIndex {
    fn ingest(&mut self, index: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        // The turnstile substrate is signed: a delta above `i64::MAX`
        // would sign-wrap under a bare `as i64`. Split it into signed
        // steps instead — every sampler is linear in the delta
        // (`V[i] += z₁; V[i] += z₂` ≡ `V[i] += z₁+z₂`), so the split
        // is state-exact.
        let mut rest = delta;
        while rest > 0 {
            let step = rest.min(i64::MAX as u64) as i64;
            rest -= step as u64;
            for s in &mut self.samplers {
                s.update(index, step);
            }
        }
        self.distinct.observe(index);
        self.max_seen = self.max_seen.max(delta);
    }

    /// Batch fast path: coalesces duplicate indices before touching the
    /// sampler bank.
    ///
    /// Every structure inside is either linear in the deltas (the
    /// sparse-recovery counters behind each ℓ₀-sampler) or idempotent
    /// per index (BJKST's `observe`), so `V[i] += z₁; V[i] += z₂` is
    /// state-identical to `V[i] += z₁+z₂`. Real citation batches repeat
    /// hot papers heavily; collapsing them means each of the `x`
    /// samplers is touched once per *distinct* index instead of once
    /// per update.
    fn ingest_batch(&mut self, updates: &[(u64, u64)]) {
        // `max_seen` tracks the largest *single-update* delta, so take
        // it from the raw deltas before coalescing sums them.
        self.counters.raw_updates = self.counters.raw_updates.saturating_add(updates.len() as u64);
        for &(_, z) in updates {
            self.max_seen = self.max_seen.max(z);
        }
        // Coalesce in u128: two u64 deltas of the same index can
        // exceed `u64::MAX`, and a wrapped total would corrupt every
        // sampler at once.
        let mut sorted: Vec<(u64, u64)> =
            updates.iter().copied().filter(|&(_, z)| z != 0).collect();
        sorted.sort_unstable_by_key(|&(i, _)| i);
        let mut coalesced: Vec<(u64, u128)> = Vec::with_capacity(sorted.len());
        for &(i, z) in &sorted {
            match coalesced.last_mut() {
                Some(last) if last.0 == i => last.1 += u128::from(z),
                _ => coalesced.push((i, u128::from(z))),
            }
        }
        if coalesced.is_empty() {
            return;
        }
        // Expand each coalesced total back into signed steps (the
        // samplers are linear in the delta, so the split is
        // state-exact); totals fit one step unless a batch really
        // carried more than `i64::MAX` for one index.
        let mut signed: Vec<(u64, i64)> = Vec::with_capacity(coalesced.len());
        for &(i, total) in &coalesced {
            let mut rest = total;
            while rest > 0 {
                let step = rest.min(i64::MAX as u128) as i64;
                rest -= step as u128;
                signed.push((i, step));
            }
        }
        if let Some(ladder) = self.bank_ladder() {
            // Bank kernel: tile the coalesced batch, evaluate each
            // item's fingerprint term `z · r^i` once at the
            // bank-shared point, and let every sampler dispatch the
            // tile through survivor-only level batching. State stays
            // bit-identical to the scalar loop — the kernels reorder
            // only commutative exact additions.
            let mut idx: Vec<u64> = Vec::with_capacity(BANK_TILE.min(signed.len()));
            let mut del: Vec<i64> = Vec::with_capacity(idx.capacity());
            let mut terms: Vec<u64> = Vec::with_capacity(idx.capacity());
            for chunk in signed.chunks(BANK_TILE) {
                idx.clear();
                del.clear();
                terms.clear();
                for &(i, z) in chunk {
                    idx.push(i);
                    del.push(z);
                    terms.push(mersenne_mul(from_i64(z), ladder.pow(i)));
                }
                let mut touches = 0u64;
                for s in &mut self.samplers {
                    touches = touches
                        .saturating_add(s.ingest_tile_with_terms(&idx, &del, &terms, &mut self.scratch));
                }
                self.counters.tiles += 1;
                self.counters.tile_items =
                    self.counters.tile_items.saturating_add(chunk.len() as u64);
                self.counters.tile_capacity += BANK_TILE as u64;
                self.counters.level_touches += touches;
                self.counters.pow_evals =
                    self.counters.pow_evals.saturating_add(chunk.len() as u64);
                self.counters.pow_reused = self.counters.pow_reused.saturating_add(
                    (chunk.len() as u64)
                        .saturating_mul((self.samplers.len() as u64).saturating_sub(1)),
                );
            }
        } else {
            // Per-sampler fallback (restored pre-bank snapshots): the
            // batched kernel path inside each sampler, own ladders.
            for s in &mut self.samplers {
                s.update_batch(&signed);
            }
        }
        for &(i, _) in &coalesced {
            self.distinct.observe(i);
        }
    }

    fn bank_counters(&self) -> Option<BankCounters> {
        Some(self.counters)
    }
}

impl SpaceUsage for CashRegisterHIndex {
    fn space_words(&self) -> usize {
        let sampler_words: usize = self.samplers.iter().map(SpaceUsage::space_words).sum();
        sampler_words + self.distinct.space_words() + 1
    }

    fn scratch_words(&self) -> usize {
        // The bank shares one power ladder: count the table once, not
        // once per sampler. Samplers that kept their own ladder (old
        // snapshots) still report individually.
        let Some(first) = self.samplers.first() else {
            return 0;
        };
        let shared = first.ladder_arc();
        let mut words = first.scratch_words();
        for s in &self.samplers[1..] {
            if !Arc::ptr_eq(s.ladder_arc(), shared) {
                words += s.scratch_words();
            }
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;
    use hindex_stream::generator::planted_h_corpus;
    use hindex_stream::{Corpus, Unaggregator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn additive(e: f64, d: f64) -> CashRegisterParams {
        CashRegisterParams::Additive {
            epsilon: Epsilon::new(e).unwrap(),
            delta: Delta::new(d).unwrap(),
        }
    }

    /// Feed a corpus as a shuffled unit-update cash-register stream.
    fn run(corpus: &Corpus, params: CashRegisterParams, seed: u64) -> CashRegisterHIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut est = CashRegisterHIndex::new(params, &mut rng);
        let updates = Unaggregator { max_batch: 3, shuffle: true }.stream(corpus, &mut rng);
        for u in &updates {
            est.ingest(u.paper.0, u.delta);
        }
        est
    }

    #[test]
    fn sampler_counts_match_theorem() {
        let add = additive(0.2, 0.1);
        // 3/0.04 · ln 20 = 75 · 3.0 = 224.6 → 225.
        assert_eq!(add.num_samplers(), 225);
        let mul = CashRegisterParams::Multiplicative {
            epsilon: Epsilon::new(0.2).unwrap(),
            delta: Delta::new(0.1).unwrap(),
            beta: 100,
            distinct_bound: 1000,
        };
        assert_eq!(mul.num_samplers(), 2247);
    }

    #[test]
    fn empty_stream_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let est = CashRegisterHIndex::new(additive(0.3, 0.2), &mut rng);
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn additive_guarantee_small_corpus() {
        // D = 60 cited papers, h* = 20: additive slack ε·D = 18.
        let e = 0.3;
        let corpus = planted_h_corpus(20, 60, 5);
        let truth = h_index(&corpus.citation_counts());
        assert_eq!(truth, 20);
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let est = run(&corpus, additive(e, 0.1), seed);
            let got = est.estimate();
            let d = corpus.ground_truth().distinct_cited;
            if (got as f64 - truth as f64).abs() <= e * d as f64 {
                ok += 1;
            }
        }
        assert!(ok >= trials - 1, "additive guarantee failed {}/{trials}", trials - ok);
    }

    #[test]
    fn dense_support_estimates_well() {
        // Every cited paper is in the H-support: D = h* = 50, so the
        // additive ε·D bound is effectively multiplicative.
        let e = 0.25;
        let counts: Vec<u64> = vec![100; 50];
        let corpus = Corpus::solo_from_counts(&counts);
        let mut ok = 0;
        let trials = 10;
        for seed in 0..trials {
            let est = run(&corpus, additive(e, 0.1), seed);
            let got = est.estimate();
            if (got as f64 - 50.0).abs() <= e * 50.0 {
                ok += 1;
            }
        }
        assert!(ok >= trials - 1, "only {ok}/{trials} within bounds");
    }

    #[test]
    fn multiplicative_mode_with_promised_bound() {
        let e = 0.3;
        // h* = 25 out of D ≤ 100 cited papers.
        let corpus = planted_h_corpus(25, 100, 9);
        let params = CashRegisterParams::Multiplicative {
            epsilon: Epsilon::new(e).unwrap(),
            delta: Delta::new(0.2).unwrap(),
            beta: 20,
            distinct_bound: 100,
        };
        let mut ok = 0;
        let trials = 4;
        for seed in 0..trials {
            let est = run(&corpus, params, seed);
            let got = est.estimate();
            if (got as f64 - 25.0).abs() <= e * 25.0 {
                ok += 1;
            }
        }
        assert!(ok >= trials - 1, "only {ok}/{trials} within ±ε h*");
    }

    #[test]
    fn updates_accumulate_across_batches() {
        // The same paper updated many times must count once, with its
        // total.
        let mut rng = StdRng::seed_from_u64(3);
        let mut est = CashRegisterHIndex::new(additive(0.3, 0.1), &mut rng);
        // 30 papers × 30 unit updates each, interleaved: h* = 30.
        for round in 0..30 {
            for paper in 0..30u64 {
                est.ingest(paper, 1);
                let _ = round;
            }
        }
        let got = est.estimate();
        assert!(
            (got as f64 - 30.0).abs() <= 0.3 * 30.0 + 1.0,
            "got {got}, want ≈ 30"
        );
    }

    #[test]
    fn samples_carry_exact_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut est = CashRegisterHIndex::new(additive(0.3, 0.3), &mut rng);
        for paper in 0..20u64 {
            for _ in 0..=paper {
                est.ingest(paper, 1);
            }
        }
        for (paper, value) in est.draw_samples() {
            assert_eq!(value, paper + 1, "paper {paper} recovered wrong total");
        }
    }

    #[test]
    fn update_batch_coalescing_matches_loop() {
        let mut rng = StdRng::seed_from_u64(11);
        let proto = CashRegisterHIndex::new(additive(0.3, 0.2), &mut rng);
        let mut batched = proto.clone();
        let mut looped = proto;
        let updates: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k % 70, 1 + k % 3)).collect();
        batched.ingest_batch(&updates);
        for &(i, z) in &updates {
            looped.ingest(i, z);
        }
        assert_eq!(batched.estimate(), looped.estimate());
        assert_eq!(batched.draw_samples(), looped.draw_samples());
    }

    #[test]
    fn bank_batch_matches_scalar_loop_state() {
        let mut rng = StdRng::seed_from_u64(21);
        let proto = CashRegisterHIndex::new(additive(0.3, 0.2), &mut rng);
        let mut batched = proto.clone();
        let mut looped = proto;
        let updates: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k % 333, 1 + k % 4)).collect();
        // Odd chunking so tiles run partially full and straddle
        // coalescing boundaries.
        for chunk in updates.chunks(701) {
            batched.ingest_batch(chunk);
        }
        for &(i, z) in &updates {
            looped.ingest(i, z);
        }
        assert_eq!(batched.estimate(), looped.estimate());
        assert_eq!(batched.draw_samples(), looped.draw_samples());
        #[cfg(feature = "debug_invariants")]
        assert_eq!(batched.state_digest(), looped.state_digest());
        let c = batched.bank_counters().expect("bank estimator reports counters");
        assert!(c.tiles >= 5, "tiles {}", c.tiles);
        assert_eq!(c.raw_updates, 3_000);
        assert!(c.level_touches > 0);
        // Every term computed once is reused by the other x−1 samplers.
        assert_eq!(c.pow_reused, c.pow_evals * (batched.num_samplers() as u64 - 1));
        // The scalar path never enters the bank kernel.
        let scalar_counters = looped.bank_counters().unwrap();
        assert_eq!(scalar_counters.tiles, 0);
    }

    #[test]
    fn scratch_words_counts_bank_ladder_once() {
        let mut rng = StdRng::seed_from_u64(6);
        let est = CashRegisterHIndex::new(additive(0.3, 0.2), &mut rng);
        assert!(est.num_samplers() > 10);
        // One shared ladder table (~2049 words) for the whole bank,
        // not one per sampler.
        assert!(est.scratch_words() < 2 * 2050, "{}", est.scratch_words());
        assert!(est.scratch_words() > 0);
    }

    #[test]
    fn snapshot_roundtrip_restores_bank_sharing() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut est = CashRegisterHIndex::new(additive(0.4, 0.3), &mut rng);
        est.ingest_batch(&(0..500u64).map(|k| (k % 90, 1 + k % 2)).collect::<Vec<_>>());
        let bytes = est.to_bytes();
        let (mut back, _) = CashRegisterHIndex::read_from(&bytes).unwrap();
        // Decode re-points every sampler at one ladder, so the
        // restored estimator keeps the bank fast path (and the
        // deduplicated scratch accounting).
        assert!(back.bank_ladder().is_some());
        assert_eq!(back.scratch_words(), est.scratch_words());
        back.ingest_batch(&[(7, 3), (11, 2)]);
        est.ingest_batch(&[(7, 3), (11, 2)]);
        assert_eq!(back.estimate(), est.estimate());
        assert_eq!(back.draw_samples(), est.draw_samples());
    }

    #[test]
    fn params_build_matches_new() {
        let params = additive(0.3, 0.2);
        let via_trait = params.build(&mut StdRng::seed_from_u64(9));
        let via_new = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(9));
        assert_eq!(via_trait.num_samplers(), via_new.num_samplers());
        assert_eq!(via_trait.space_words(), via_new.space_words());
    }

    #[test]
    fn space_scales_with_sampler_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let small = CashRegisterHIndex::new(additive(0.5, 0.5), &mut rng);
        let big = CashRegisterHIndex::new(additive(0.2, 0.05), &mut rng);
        assert!(big.num_samplers() > small.num_samplers());
        assert!(big.space_words() > small.space_words());
    }
}
