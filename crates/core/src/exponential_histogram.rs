//! Algorithm 1 / Theorem 5: the exponential histogram.
//!
//! One counter per grid level `i`, counting the stream elements
//! `≥ (1+ε)ⁱ`; the estimate is the largest threshold whose counter
//! reaches it. Deterministic, works under adversarial order, and
//! guarantees `(1−ε)·h* ≤ ĥ ≤ h*`.
//!
//! Two output-identical implementation refinements over the paper's
//! pseudocode:
//!
//! * instead of incrementing every cleared counter (`O(levels)` per
//!   element), each element increments only the bucket of its *highest*
//!   cleared level and the query takes suffix sums (`O(1)` amortized
//!   per element, `O(levels)` per query);
//! * counters are materialized lazily: a counter for a level nobody has
//!   cleared yet would hold zero, so the vector grows only when a new
//!   maximum level appears. This removes the pseudocode's need to know
//!   `n` in advance while counting exactly the same quantities.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use hindex_common::{
    AggregateEstimator, Epsilon, Estimate, EstimatorParams, ExpGrid, Mergeable, SpaceUsage,
};
use rand::Rng;

/// Parameters for [`ExponentialHistogram`], usable with
/// [`EstimatorParams::build`]. The algorithm is deterministic, so
/// `build` ignores the RNG — the impl exists so Algorithm 1 plugs into
/// the same construction seam as the randomized estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialHistogramParams {
    /// Accuracy `ε`.
    pub epsilon: Epsilon,
}

impl EstimatorParams for ExponentialHistogramParams {
    type Output = ExponentialHistogram;

    fn build<R: Rng + ?Sized>(&self, _rng: &mut R) -> ExponentialHistogram {
        ExponentialHistogram::new(self.epsilon)
    }
}

/// Deterministic `(1−ε)`-approximate streaming H-index over aggregate
/// streams (Algorithm 1).
///
/// ```
/// use hindex_common::{AggregateEstimator, Epsilon, Estimate};
/// use hindex_core::ExponentialHistogram;
///
/// let mut est = ExponentialHistogram::new(Epsilon::new(0.1).unwrap());
/// for citations in [10u64, 8, 5, 4, 3] {
///     est.ingest(citations);
/// }
/// let h = est.estimate(); // true h-index is 4
/// assert!(h <= 4 && h >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct ExponentialHistogram {
    grid: ExpGrid,
    /// `buckets[i]` = number of elements whose highest cleared level is
    /// exactly `i`; the paper's counter `c_i` is `Σ_{j ≥ i} buckets[j]`.
    buckets: Vec<u64>,
}

impl ExponentialHistogram {
    /// Creates the estimator for accuracy `ε`.
    #[must_use]
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            grid: ExpGrid::new(epsilon.get()),
            buckets: Vec::new(),
        }
    }

    /// The threshold grid in use.
    #[must_use]
    pub fn grid(&self) -> ExpGrid {
        self.grid
    }

    /// Structural invariants of the lazy bucket vector: it never ends
    /// in a zero bucket (levels materialise only when an element clears
    /// them, and merges of well-formed histograms preserve this), and
    /// the derived suffix counters `c_i` are non-increasing in `i` by
    /// construction. Only compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    fn assert_buckets_consistent(&self) {
        assert!(
            self.buckets.last() != Some(&0),
            "trailing zero bucket: lazy materialisation invariant broken"
        );
        let c = self.counters();
        assert!(
            c.windows(2).all(|w| w[0] >= w[1]),
            "suffix counters must be non-increasing: {c:?}"
        );
    }

    /// FNV digest over the grid and the complete bucket vector, for
    /// bit-identity assertions. Only compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        hindex_sketch::digest::fnv1a(
            std::iter::once(self.buckets.len() as u64).chain(self.buckets.iter().copied()),
        )
    }

    /// The paper's counter `c_i` (number of elements `≥ (1+ε)ⁱ`) for
    /// each level, highest level last.
    #[must_use]
    pub fn counters(&self) -> Vec<u64> {
        let mut suffix = 0u64;
        let mut c: Vec<u64> = self
            .buckets
            .iter()
            .rev()
            .map(|&b| {
                suffix += b;
                suffix
            })
            .collect();
        c.reverse();
        c
    }
}

/// Merges another histogram built with the same ε: bucket counts add
/// levelwise, so the merged estimate equals the estimate over the
/// concatenated streams. This makes Algorithm 1 embarrassingly
/// parallel over stream shards. Unlike the randomized estimators, no
/// shared randomness is needed — only a shared grid.
impl Mergeable for ExponentialHistogram {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.grid, other.grid, "histograms must share epsilon");
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        #[cfg(feature = "debug_invariants")]
        self.assert_buckets_consistent();
    }
}

/// Payload: the grid as a nested frame, then the lazy bucket vector.
/// Decode re-validates the lazy-materialisation invariant (no trailing
/// zero bucket) so every restored histogram is a state some update
/// sequence could have produced.
impl Snapshot for ExponentialHistogram {
    const TAG: u8 = 14;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_nested(&self.grid);
        w.put_usize(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let grid = r.get_nested::<ExpGrid>()?;
        let len = r.get_count(8)?;
        let mut buckets = Vec::with_capacity(len);
        for _ in 0..len {
            buckets.push(r.get_u64()?);
        }
        if buckets.last() == Some(&0) {
            return Err(SnapshotError::Invalid("trailing zero bucket"));
        }
        Ok(Self { grid, buckets })
    }
}

impl Estimate for ExponentialHistogram {
    fn estimate(&self) -> u64 {
        // Scan levels from the top; the first (highest) level whose
        // suffix count reaches its integer threshold wins.
        let mut suffix = 0u64;
        for (level, &b) in self.buckets.iter().enumerate().rev() {
            suffix += b;
            let t = self.grid.int_threshold(level as u32);
            if suffix >= t {
                return t;
            }
        }
        0
    }
}

impl AggregateEstimator for ExponentialHistogram {
    fn ingest(&mut self, value: u64) {
        let Some(level) = self.grid.level_of(value) else {
            return; // zero clears no threshold
        };
        let level = level as usize;
        if level >= self.buckets.len() {
            self.buckets.resize(level + 1, 0);
        }
        self.buckets[level] += 1;
        #[cfg(feature = "debug_invariants")]
        self.assert_buckets_consistent();
    }
}

impl SpaceUsage for ExponentialHistogram {
    fn space_words(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).unwrap()
    }

    fn check_guarantee(values: &[u64], e: f64) {
        let mut est = ExponentialHistogram::new(eps(e));
        est.extend_from(values.iter().copied());
        let h = h_index(values);
        let got = est.estimate();
        assert!(got <= h, "over-estimate: got {got} truth {h} (eps {e})");
        assert!(
            got as f64 >= (1.0 - e) * h as f64,
            "under-estimate: got {got} truth {h} (eps {e})"
        );
    }

    #[test]
    fn empty_and_zero_streams() {
        let est = ExponentialHistogram::new(eps(0.1));
        assert_eq!(est.estimate(), 0);
        let mut est = ExponentialHistogram::new(eps(0.1));
        est.extend_from([0u64, 0, 0]);
        assert_eq!(est.estimate(), 0);
        assert_eq!(est.space_words(), 0);
    }

    #[test]
    fn paper_example() {
        check_guarantee(&[5, 5, 6, 5, 5, 6, 5, 5, 5, 5], 0.1);
    }

    #[test]
    fn guarantee_on_fixed_shapes() {
        let staircase: Vec<u64> = (1..=1000).rev().collect();
        let flat: Vec<u64> = vec![500; 500];
        let one_big: Vec<u64> = std::iter::once(1_000_000).chain(vec![0; 99]).collect();
        for e in [0.05, 0.1, 0.2, 0.3, 0.5] {
            check_guarantee(&staircase, e);
            check_guarantee(&flat, e);
            check_guarantee(&one_big, e);
        }
    }

    #[test]
    fn order_invariant() {
        // Deterministic algorithm over a multiset: any order gives the
        // same answer.
        let mut rng = StdRng::seed_from_u64(0);
        let mut values: Vec<u64> = (0..200).map(|_| rng.random_range(0..500)).collect();
        let mut a = ExponentialHistogram::new(eps(0.2));
        a.extend_from(values.iter().copied());
        values.sort_unstable();
        let mut b = ExponentialHistogram::new(eps(0.2));
        b.extend_from(values.iter().copied());
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn counters_match_definition() {
        // ε = 0.5: integer thresholds 1, 2, 3, 4, 6, 8, 12, ...
        let values = [1u64, 2, 3, 4, 6];
        let mut est = ExponentialHistogram::new(eps(0.5));
        est.extend_from(values.iter().copied());
        // c_i = #elements ≥ T_i over T = [1, 2, 3, 4, 6]: [5, 4, 3, 2, 1].
        assert_eq!(est.counters(), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn space_is_logarithmic_in_max_value() {
        let mut est = ExponentialHistogram::new(eps(0.1));
        for v in [1u64, 10, 100, 1_000_000] {
            est.ingest(v);
        }
        // levels ≈ log_{1.1}(1e6) ≈ 145.
        let words = est.space_words();
        assert!(words > 100 && words < 200, "words = {words}");
    }

    #[test]
    fn space_bound_of_theorem_5() {
        // ≤ 2 ε⁻¹ ln n words for a stream of n elements with values ≤ n.
        for e in [0.1, 0.2, 0.5] {
            let n = 10_000u64;
            let mut est = ExponentialHistogram::new(eps(e));
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..n {
                est.ingest(rng.random_range(0..=n));
            }
            let bound = (2.0 / e) * (n as f64 + 1.0).ln() + 1.0;
            assert!(
                (est.space_words() as f64) <= bound,
                "eps {e}: {} words > bound {bound}",
                est.space_words()
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_guarantee_random_streams(
            values in proptest::collection::vec(0u64..100_000, 0..400),
            e_centi in 5u32..90,
        ) {
            let e = f64::from(e_centi) / 100.0;
            let mut est = ExponentialHistogram::new(eps(e));
            est.extend_from(values.iter().copied());
            let h = h_index(&values);
            let got = est.estimate();
            proptest::prop_assert!(got <= h);
            proptest::prop_assert!(got as f64 >= (1.0 - e) * h as f64);
        }

        #[test]
        fn prop_estimate_monotone_in_stream(
            values in proptest::collection::vec(0u64..10_000, 1..200),
        ) {
            let mut est = ExponentialHistogram::new(eps(0.2));
            let mut prev = 0;
            for &v in &values {
                est.ingest(v);
                let now = est.estimate();
                proptest::prop_assert!(now >= prev, "estimate decreased");
                prev = now;
            }
        }
    }
}
