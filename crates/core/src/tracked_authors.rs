//! Per-author streaming H-index over shared streams.
//!
//! §2.3: "for the sake of simplicity we assume … only one author in the
//! stream. This can easily be extended to papers with multiple authors
//! and computing H-index for each author." This module is that
//! extension, for the two cases a deployment actually meets:
//!
//! * [`TrackedAuthorsAggregate`] — a chosen set of authors, each with a
//!   private [`ShiftingWindow`] (Algorithm 2), fed from one shared
//!   paper stream. Space: `O(|tracked| · ε⁻¹ log ε⁻¹)` words,
//!   independent of the stream.
//! * [`TrackedAuthorsCash`] — the same for the cash-register model: a
//!   private Algorithm 6 sketch per tracked author, fed from one shared
//!   update stream (updates carry the paper's authors, as
//!   [`hindex_stream::CashUpdate`] does).
//!
//! For *finding* impactful authors without naming them first, use
//! [`crate::HeavyHitters`]; these trackers are the cheap follow-up once
//! the candidate set is known (the classic two-phase mining pattern).

use crate::cash_register::{CashRegisterHIndex, CashRegisterParams};
use crate::shifting_window::ShiftingWindow;
use hindex_common::{AggregateEstimator, CashRegisterEstimator, Epsilon, Estimate, SpaceUsage};
use hindex_stream::{AuthorId, Paper};
use rand::Rng;
use std::collections::HashMap;

/// Per-author Algorithm 2 estimators over a shared aggregate paper
/// stream.
#[derive(Debug, Clone)]
pub struct TrackedAuthorsAggregate {
    estimators: HashMap<AuthorId, ShiftingWindow>,
}

impl TrackedAuthorsAggregate {
    /// Tracks the given authors at accuracy `ε`.
    #[must_use]
    pub fn new(authors: &[AuthorId], epsilon: Epsilon) -> Self {
        Self {
            estimators: authors
                .iter()
                .map(|&a| (a, ShiftingWindow::new(epsilon)))
                .collect(),
        }
    }

    /// Feeds one paper: it counts toward each *tracked* author on it.
    pub fn push(&mut self, paper: &Paper) {
        for a in &paper.authors {
            if let Some(est) = self.estimators.get_mut(a) {
                est.ingest(paper.citations);
            }
        }
    }

    /// The current estimate for a tracked author (`None` if untracked).
    #[must_use]
    pub fn estimate(&self, author: AuthorId) -> Option<u64> {
        self.estimators.get(&author).map(Estimate::estimate)
    }

    /// All tracked authors with their estimates, sorted descending.
    #[must_use]
    pub fn leaderboard(&self) -> Vec<(AuthorId, u64)> {
        let mut v: Vec<(AuthorId, u64)> = self
            .estimators
            .iter()
            .map(|(&a, e)| (a, e.estimate()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of tracked authors.
    #[must_use]
    pub fn num_tracked(&self) -> usize {
        self.estimators.len()
    }
}

impl SpaceUsage for TrackedAuthorsAggregate {
    fn space_words(&self) -> usize {
        self.estimators
            .values()
            .map(|e| e.space_words() + 1)
            .sum()
    }
}

/// Per-author Algorithm 6 sketches over a shared cash-register update
/// stream.
#[derive(Debug, Clone)]
pub struct TrackedAuthorsCash {
    estimators: HashMap<AuthorId, CashRegisterHIndex>,
}

impl TrackedAuthorsCash {
    /// Tracks the given authors; each gets an independent sketch drawn
    /// from `rng`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        authors: &[AuthorId],
        params: CashRegisterParams,
        rng: &mut R,
    ) -> Self {
        Self {
            estimators: authors
                .iter()
                .map(|&a| (a, CashRegisterHIndex::new(params, rng)))
                .collect(),
        }
    }

    /// Feeds one update `(paper, authors, delta)`: it is applied to the
    /// sketch of each tracked author on the paper.
    pub fn update(&mut self, paper: u64, authors: &[AuthorId], delta: u64) {
        for a in authors {
            if let Some(est) = self.estimators.get_mut(a) {
                est.ingest(paper, delta);
            }
        }
    }

    /// The current estimate for a tracked author (`None` if untracked).
    #[must_use]
    pub fn estimate(&self, author: AuthorId) -> Option<u64> {
        self.estimators.get(&author).map(Estimate::estimate)
    }

    /// Number of tracked authors.
    #[must_use]
    pub fn num_tracked(&self) -> usize {
        self.estimators.len()
    }
}

impl SpaceUsage for TrackedAuthorsCash {
    fn space_words(&self) -> usize {
        self.estimators
            .values()
            .map(|e| e.space_words() + 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::Delta;
    use hindex_stream::generator::planted_heavy_hitters;
    use hindex_stream::Unaggregator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).unwrap()
    }

    #[test]
    fn aggregate_tracks_each_author_independently() {
        let corpus = planted_heavy_hitters(&[60, 30], 10, 3, 2, 1);
        let truth = corpus.ground_truth();
        let tracked = [AuthorId(0), AuthorId(1), AuthorId(5)];
        let mut t = TrackedAuthorsAggregate::new(&tracked, eps(0.1));
        for p in corpus.papers() {
            t.push(p);
        }
        for &a in &tracked {
            let truth_h = truth.per_author.get(&a).copied().unwrap_or(0);
            let got = t.estimate(a).unwrap();
            assert!(got <= truth_h, "author {a}");
            assert!(
                got as f64 >= 0.9 * truth_h as f64,
                "author {a}: got {got} truth {truth_h}"
            );
        }
        assert_eq!(t.estimate(AuthorId(999)), None);
    }

    #[test]
    fn leaderboard_sorted() {
        let corpus = planted_heavy_hitters(&[60, 30], 0, 0, 0, 2);
        let mut t =
            TrackedAuthorsAggregate::new(&[AuthorId(0), AuthorId(1)], eps(0.1));
        for p in corpus.papers() {
            t.push(p);
        }
        let lb = t.leaderboard();
        assert_eq!(lb.len(), 2);
        assert_eq!(lb[0].0, AuthorId(0));
        assert!(lb[0].1 >= lb[1].1);
    }

    #[test]
    fn multi_author_papers_count_for_all_tracked() {
        let mut t = TrackedAuthorsAggregate::new(&[AuthorId(1), AuthorId(2)], eps(0.1));
        for i in 0..50u64 {
            t.push(&Paper::with_authors(i, &[1, 2], 100));
        }
        let h1 = t.estimate(AuthorId(1)).unwrap();
        let h2 = t.estimate(AuthorId(2)).unwrap();
        assert_eq!(h1, h2);
        assert!(h1 >= 45);
    }

    #[test]
    fn cash_tracker_follows_per_author_truth() {
        // Author 0: 25 papers × 30 citations (h = 25);
        // author 1: 10 papers × 30 citations (h = 10).
        let mut corpus = hindex_stream::Corpus::new();
        for i in 0..25u64 {
            corpus.push(Paper::solo(i, 0, 30));
        }
        for i in 25..35u64 {
            corpus.push(Paper::solo(i, 1, 30));
        }
        let params = CashRegisterParams::Additive {
            epsilon: eps(0.25),
            delta: Delta::new(0.1).unwrap(),
        };
        let mut ok = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = TrackedAuthorsCash::new(&[AuthorId(0), AuthorId(1)], params, &mut rng);
            for u in Unaggregator::default().stream(&corpus, &mut rng) {
                t.update(u.paper.0, &u.authors, u.delta);
            }
            let h0 = t.estimate(AuthorId(0)).unwrap();
            let h1 = t.estimate(AuthorId(1)).unwrap();
            if (h0 as f64 - 25.0).abs() <= 7.0 && (h1 as f64 - 10.0).abs() <= 4.0 {
                ok += 1;
            }
        }
        assert!(ok >= 5, "per-author cash estimates off in {}/6 runs", 6 - ok);
    }

    #[test]
    fn space_scales_with_tracked_count() {
        let few = TrackedAuthorsAggregate::new(&[AuthorId(0)], eps(0.2));
        let many: Vec<AuthorId> = (0..10).map(AuthorId).collect();
        let many = TrackedAuthorsAggregate::new(&many, eps(0.2));
        assert!(many.space_words() > 5 * few.space_words());
        assert_eq!(many.num_tracked(), 10);
    }
}
