//! Algorithm 8 / Theorem 18: all heavy hitters in H-index.
//!
//! Goal: from a stream of papers, output every author whose H-index is
//! at least an ε fraction of the total H-impact
//! `h*(S) = Σ_a h*(a)`, with a `(1±ε)` estimate of each one's H-index
//! — without tracking any per-author state.
//!
//! Mechanism (group testing): `x = ⌈log₂(1/(εδ))⌉` independent rows,
//! each hashing authors pairwise-independently into `ℓ = ⌈2/ε²⌉`
//! buckets; a paper is routed, per row, to the bucket of **each** of
//! its authors. Every bucket runs Algorithm 7
//! ([`crate::OneHeavyHitter`]). With `ℓ = 2/ε²`, a heavy author's
//! bucket receives at most `ε·h*(aᵢ)` of foreign H-impact in
//! expectation-over-hash with probability `≥ 1/2` per row
//! (Markov), so across rows every heavy author is isolated and
//! detected somewhere whp; light authors that get certified by a lucky
//! bucket are removed by the final threshold filter.
//!
//! The threshold: the paper states heaviness against `h*(S)`, which no
//! small-space algorithm knows exactly. [`HeavyHitters::total_impact_estimate`]
//! returns `max_rows Σ_buckets ĥ(bucket)` — within the bucket noise it
//! sandwiches `h*(S)` (bucket H-indices are subadditive over disjoint
//! paper unions and at least the max member) — and
//! [`HeavyHitters::decode`] filters on `ε` times that by default, with
//! an explicit-threshold variant for experiments.

use crate::one_heavy_hitter::OneHeavyHitter;
use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer, FRAME_OVERHEAD};
use hindex_common::{Delta, Epsilon, EstimatorParams, Mergeable, SpaceUsage};
use hindex_hashing::{Hasher64, PairwiseHash};
use hindex_stream::{AuthorId, Paper};
use rand::Rng;
use std::collections::HashMap;

/// Configuration for [`HeavyHitters`].
#[derive(Debug, Clone, Copy)]
pub struct HeavyHittersParams {
    /// Heaviness / accuracy parameter `ε`.
    pub epsilon: Epsilon,
    /// Failure probability `δ`.
    pub delta: Delta,
    /// Override the bucket count `ℓ = ⌈2/ε²⌉` (experiments only).
    pub buckets_override: Option<usize>,
    /// Override the row count `x = ⌈log₂(1/(εδ))⌉` (experiments only).
    pub rows_override: Option<usize>,
}

impl HeavyHittersParams {
    /// Standard parameters.
    #[must_use]
    pub fn new(epsilon: Epsilon, delta: Delta) -> Self {
        Self {
            epsilon,
            delta,
            buckets_override: None,
            rows_override: None,
        }
    }

    /// Buckets per row.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets_override
            .unwrap_or_else(|| (2.0 / self.epsilon.get().powi(2)).ceil() as usize)
            .max(1)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows_override
            .unwrap_or_else(|| {
                (1.0 / (self.epsilon.get() * self.delta.get()))
                    .log2()
                    .ceil()
                    .max(1.0) as usize
            })
            .max(1)
    }
}

/// One detected heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitterCandidate {
    /// The author.
    pub author: AuthorId,
    /// Median (over certifying buckets) estimate of the author's
    /// H-index.
    pub h_estimate: u64,
    /// How many of the rows certified this author.
    pub rows_found: usize,
}

/// Streaming heavy-hitters-in-H-index sketch (Algorithm 8).
///
/// ```
/// use hindex_common::{Delta, Epsilon};
/// use hindex_core::{HeavyHitters, HeavyHittersParams};
/// use hindex_stream::{AuthorId, Paper};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let params = HeavyHittersParams::new(
///     Epsilon::new(0.25).unwrap(),
///     Delta::new(0.1).unwrap(),
/// );
/// let mut hh = HeavyHitters::new(params, &mut StdRng::seed_from_u64(1));
/// // Author 7 dominates: 40 papers with 60 citations each.
/// for i in 0..40 {
///     hh.push(&Paper::solo(i, 7, 60));
/// }
/// for i in 40..60 {
///     hh.push(&Paper::solo(i, i, 1)); // light noise authors
/// }
/// let out = hh.decode();
/// assert_eq!(out[0].author, AuthorId(7));
/// ```
#[derive(Debug, Clone)]
pub struct HeavyHitters {
    params: HeavyHittersParams,
    hashes: Vec<PairwiseHash>,
    /// `detectors[row * buckets + bucket]`.
    detectors: Vec<OneHeavyHitter>,
    /// Exact total number of responses (one word; the intro's scale
    /// `R`).
    total_responses: u64,
    papers_seen: u64,
}

impl HeavyHitters {
    /// Creates the sketch; all randomness (hashes, reservoirs) comes
    /// from `rng`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(params: HeavyHittersParams, rng: &mut R) -> Self {
        let rows = params.rows();
        let buckets = params.buckets();
        let hashes = (0..rows).map(|_| PairwiseHash::new(rng)).collect();
        // Per-bucket δ gets a union-bound split across all buckets.
        let bucket_delta = (params.delta.get() / (rows * buckets) as f64).max(1e-9);
        let detectors = (0..rows * buckets)
            .map(|_| OneHeavyHitter::new(params.epsilon, bucket_delta, rng))
            .collect();
        Self {
            params,
            hashes,
            detectors,
            total_responses: 0,
            papers_seen: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn params(&self) -> HeavyHittersParams {
        self.params
    }

    /// Feeds one paper tuple: per row, the paper goes to the bucket of
    /// each of its authors.
    pub fn push(&mut self, paper: &Paper) {
        self.papers_seen += 1;
        self.total_responses += paper.citations;
        let buckets = self.params.buckets() as u64;
        for (row, hash) in self.hashes.iter().enumerate() {
            for &author in &paper.authors {
                let b = hash.hash_to_range(author.0, buckets) as usize;
                self.detectors[row * self.params.buckets() + b]
                    .push_parts(&paper.authors, paper.citations);
            }
        }
    }

    /// Exact total responses `R` seen (the intro's heaviness scale).
    #[must_use]
    pub fn total_responses(&self) -> u64 {
        self.total_responses
    }

    /// Sketch-side estimate of the total H-impact `h*(S)`: the maximum
    /// over rows of the sum of bucket H-index estimates.
    #[must_use]
    pub fn total_impact_estimate(&self) -> u64 {
        let buckets = self.params.buckets();
        debug_assert!(self.detectors.len() == self.params.rows() * buckets);
        (0..self.params.rows())
            .map(|row| {
                self.detectors[row * buckets..(row + 1) * buckets]
                    .iter()
                    .map(|d| d.combined_h_estimate().0)
                    .sum::<u64>()
            })
            .max()
            // 0 is the honest sentinel for "no rows": with no detector
            // mass the impact estimate is zero, matching the empty
            // sketch. The branch is unreachable through the public API —
            // `rows()` clamps to ≥ 1 even under `rows_override: Some(0)`
            // (pinned by `zero_geometry_overrides_are_clamped`).
            .unwrap_or(0)
    }

    /// Decodes with the default threshold `ε · total_impact_estimate()`.
    #[must_use]
    pub fn decode(&self) -> Vec<HeavyHitterCandidate> {
        let bar = (self.params.epsilon.get() * self.total_impact_estimate() as f64) as u64;
        self.decode_with_threshold(bar)
    }

    /// Exploratory L2 decode: §5 names "L2 heavy hitters" (users whose
    /// H-index is large in the *square* of the counts) as an open
    /// direction. This decode keeps candidates with
    /// `ĥ² ≥ ε · Σ_buckets ĥ(bucket)²`, using the max-row sum of
    /// squared bucket estimates as the `Σ_a h*(a)²` proxy (heavy
    /// authors are isolated whp, so their buckets' squares dominate the
    /// sum exactly when they dominate the true L2 mass). No theorem is
    /// claimed — this is the paper's future-work item made runnable.
    #[must_use]
    pub fn decode_l2(&self) -> Vec<HeavyHitterCandidate> {
        let buckets = self.params.buckets();
        let l2_mass: u128 = (0..self.params.rows())
            .map(|row| {
                self.detectors[row * buckets..(row + 1) * buckets]
                    .iter()
                    .map(|d| {
                        let h = u128::from(d.combined_h_estimate().0);
                        h * h
                    })
                    .sum::<u128>()
            })
            .max()
            // Same sentinel contract as `total_impact_estimate`: zero L2
            // mass for an (unreachable) empty row range.
            .unwrap_or(0);
        let bar_sq = self.params.epsilon.get() * l2_mass as f64;
        let all = self.decode_with_threshold(0);
        all.into_iter()
            .filter(|c| {
                let h = c.h_estimate as f64;
                h * h >= bar_sq
            })
            .collect()
    }

    /// Decodes, keeping only candidates whose estimated H-index is at
    /// least `threshold`. Returns at most `⌈1/ε⌉` candidates, sorted by
    /// descending estimate.
    #[must_use]
    pub fn decode_with_threshold(&self, threshold: u64) -> Vec<HeavyHitterCandidate> {
        let buckets = self.params.buckets();
        let mut per_author: HashMap<AuthorId, Vec<(usize, u64)>> = HashMap::new();
        for (idx, det) in self.detectors.iter().enumerate() {
            for (author, h_estimate) in det.decode_candidates() {
                per_author.entry(author).or_default().push((idx / buckets, h_estimate));
            }
        }
        let mut out: Vec<HeavyHitterCandidate> = per_author
            .into_iter()
            .map(|(author, mut found)| {
                let rows_found = {
                    let mut rows: Vec<usize> = found.iter().map(|&(r, _)| r).collect();
                    rows.sort_unstable();
                    rows.dedup();
                    rows.len()
                };
                found.sort_unstable_by_key(|&(_, h)| h);
                let h_estimate = found[found.len() / 2].1;
                HeavyHitterCandidate {
                    author,
                    h_estimate,
                    rows_found,
                }
            })
            .filter(|c| c.h_estimate >= threshold)
            .collect();
        out.sort_by(|a, b| {
            b.h_estimate
                .cmp(&a.h_estimate)
                .then(b.rows_found.cmp(&a.rows_found))
                .then(a.author.0.cmp(&b.author.0))
        });
        let cap = (1.0 / self.params.epsilon.get()).ceil() as usize;
        out.truncate(cap.max(1));
        out
    }
}

/// Payload: the parameter record (`ε`, `δ`, the two optional geometry
/// overrides), the exact counters, the per-row hashes, and the
/// detector grid. Decode re-derives the geometry from the restored
/// parameters and insists the hash and detector counts match it —
/// [`HeavyHitters::push`] indexes `detectors[row · buckets + b]`
/// unchecked, so a mismatched grid must never be constructed.
impl Snapshot for HeavyHitters {
    const TAG: u8 = 18;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_f64(self.params.epsilon.get());
        w.put_f64(self.params.delta.get());
        for over in [self.params.buckets_override, self.params.rows_override] {
            match over {
                Some(v) => {
                    w.put_u8(1);
                    w.put_usize(v);
                }
                None => w.put_u8(0),
            }
        }
        w.put_u64(self.total_responses);
        w.put_u64(self.papers_seen);
        w.put_usize(self.hashes.len());
        for h in &self.hashes {
            w.put_nested(h);
        }
        for d in &self.detectors {
            w.put_nested(d);
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let epsilon = Epsilon::new(r.get_f64()?)
            .map_err(|_| SnapshotError::Invalid("epsilon outside (0, 1)"))?;
        let delta = Delta::new(r.get_f64()?)
            .map_err(|_| SnapshotError::Invalid("delta outside (0, 1)"))?;
        let mut overrides = [None, None];
        for slot in &mut overrides {
            if r.get_u8()? != 0 {
                *slot = Some(r.get_usize()?);
            }
        }
        let params = HeavyHittersParams {
            epsilon,
            delta,
            buckets_override: overrides[0],
            rows_override: overrides[1],
        };
        let total_responses = r.get_u64()?;
        let papers_seen = r.get_u64()?;
        let rows = r.get_count(FRAME_OVERHEAD)?;
        if rows != params.rows() {
            return Err(SnapshotError::Invalid("hash count does not match row count"));
        }
        let mut hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            hashes.push(r.get_nested::<PairwiseHash>()?);
        }
        let cells = rows
            .checked_mul(params.buckets())
            .ok_or(SnapshotError::Invalid("detector grid overflows"))?;
        if cells > r.remaining() / FRAME_OVERHEAD {
            return Err(SnapshotError::Invalid("detector grid larger than payload"));
        }
        let mut detectors = Vec::with_capacity(cells);
        for _ in 0..cells {
            detectors.push(r.get_nested::<OneHeavyHitter>()?);
        }
        Ok(Self {
            params,
            hashes,
            detectors,
            total_responses,
            papers_seen,
        })
    }
}

impl EstimatorParams for HeavyHittersParams {
    type Output = HeavyHitters;

    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> HeavyHitters {
        HeavyHitters::new(*self, rng)
    }
}

impl HeavyHitters {
    /// FNV digest over every detector plus the exact tallies, for the
    /// bit-identity audits around merges. The hash functions are
    /// construction-time randomness (asserted equal before any merge),
    /// not evolving state, so they stay out of the digest. Only
    /// compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        hindex_sketch::digest::fnv1a(
            self.detectors
                .iter()
                .map(OneHeavyHitter::state_digest)
                .chain([self.total_responses, self.papers_seen]),
        )
    }
}

/// Merges a sketch fed a disjoint shard of the paper stream. Both
/// operands must come from the same seeded prototype (same hash
/// functions — asserted), so a paper routes to the same `(row, bucket)`
/// cell on either side and cells merge pairwise via
/// [`OneHeavyHitter`]'s merge. The embedded histograms combine
/// exactly; the reservoir samples combine distributionally (see
/// [`Reservoir::merge_with`](hindex_sketch::Reservoir::merge_with)),
/// so decode output matches single-stream ingestion in distribution.
impl Mergeable for HeavyHitters {
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.hashes, other.hashes,
            "sketches must share hash randomness (clone one prototype)"
        );
        assert_eq!(self.detectors.len(), other.detectors.len(), "geometry mismatch");
        for (a, b) in self.detectors.iter_mut().zip(&other.detectors) {
            a.merge(b);
        }
        self.total_responses += other.total_responses;
        self.papers_seen += other.papers_seen;
    }
}

impl SpaceUsage for HeavyHitters {
    fn space_words(&self) -> usize {
        let det_words: usize = self.detectors.iter().map(SpaceUsage::space_words).sum();
        det_words + 2 * self.hashes.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_stream::generator::planted_heavy_hitters;
    use hindex_stream::Corpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sketch(e: f64, d: f64, seed: u64) -> HeavyHitters {
        let mut rng = StdRng::seed_from_u64(seed);
        HeavyHitters::new(
            HeavyHittersParams::new(Epsilon::new(e).unwrap(), Delta::new(d).unwrap()),
            &mut rng,
        )
    }

    fn feed(hh: &mut HeavyHitters, corpus: &Corpus) {
        for p in corpus.papers() {
            hh.push(p);
        }
    }

    #[test]
    fn geometry_matches_paper() {
        let p = HeavyHittersParams::new(
            Epsilon::new(0.25).unwrap(),
            Delta::new(0.05).unwrap(),
        );
        assert_eq!(p.buckets(), 32); // 2 / 0.0625
        assert_eq!(p.rows(), 7); // ⌈log₂(80)⌉
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let hh = sketch(0.25, 0.1, 0);
        assert!(hh.decode().is_empty());
        assert_eq!(hh.total_impact_estimate(), 0);
    }

    #[test]
    fn single_heavy_author_found() {
        // Author 0 with h = 50 over 60 light authors (h ≤ 2 each):
        // total impact ≈ 50 + 120·small — author 0 is ε-heavy for
        // ε = 0.25.
        let corpus = planted_heavy_hitters(&[50], 60, 3, 2, 1);
        let truth = corpus.ground_truth();
        let h0 = truth.per_author[&AuthorId(0)];
        assert_eq!(h0, 50);
        let mut found = 0;
        for seed in 0..10 {
            let mut hh = sketch(0.25, 0.1, seed);
            feed(&mut hh, &corpus);
            let out = hh.decode();
            if let Some(c) = out.iter().find(|c| c.author == AuthorId(0)) {
                assert!(
                    (c.h_estimate as f64) >= 0.7 * h0 as f64
                        && (c.h_estimate as f64) <= 1.3 * h0 as f64,
                    "seed {seed}: estimate {} vs {h0}",
                    c.h_estimate
                );
                found += 1;
            }
        }
        assert!(found >= 9, "found in only {found}/10 runs");
    }

    #[test]
    fn multiple_heavy_authors_found() {
        let heavy = [60u64, 50, 45];
        let corpus = planted_heavy_hitters(&heavy, 40, 3, 2, 2);
        let truth = corpus.ground_truth();
        // Every ground-truth ε-heavy author (Theorem 18's set) must be
        // recovered.
        let expected = truth.heavy_hitters(0.2);
        assert_eq!(expected.len(), 3, "test premise: all three are ε-heavy");
        let mut all_found = 0;
        for seed in 0..10 {
            let mut hh = sketch(0.2, 0.1, seed);
            feed(&mut hh, &corpus);
            let out = hh.decode();
            let ok = expected
                .iter()
                .all(|&(a, _)| out.iter().any(|c| c.author == a));
            if ok {
                all_found += 1;
            }
        }
        assert!(all_found >= 8, "all three found in only {all_found}/10 runs");
    }

    #[test]
    fn light_authors_not_reported() {
        let corpus = planted_heavy_hitters(&[80], 100, 4, 3, 3);
        for seed in 0..5 {
            let mut hh = sketch(0.25, 0.1, seed);
            feed(&mut hh, &corpus);
            for c in hh.decode() {
                assert_eq!(c.author, AuthorId(0), "seed {seed}: spurious {c:?}");
            }
        }
    }

    #[test]
    fn impact_estimate_in_sane_range() {
        let corpus = planted_heavy_hitters(&[50, 30], 50, 3, 2, 4);
        let truth = corpus.ground_truth().total_h_impact;
        let mut hh = sketch(0.25, 0.1, 5);
        feed(&mut hh, &corpus);
        let est = hh.total_impact_estimate();
        assert!(
            est >= truth / 3 && est <= truth * 2,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn total_responses_exact() {
        let corpus = planted_heavy_hitters(&[20], 10, 2, 5, 6);
        let mut hh = sketch(0.3, 0.1, 7);
        feed(&mut hh, &corpus);
        assert_eq!(
            hh.total_responses(),
            corpus.ground_truth().total_citations
        );
    }

    #[test]
    fn output_capped_at_one_over_eps() {
        let heavy: Vec<u64> = vec![30; 12];
        let corpus = planted_heavy_hitters(&heavy, 0, 0, 0, 8);
        let mut hh = sketch(0.25, 0.1, 9);
        feed(&mut hh, &corpus);
        assert!(hh.decode_with_threshold(0).len() <= 4);
    }

    #[test]
    fn explicit_threshold_filters() {
        let corpus = planted_heavy_hitters(&[60, 10], 0, 0, 0, 10);
        let mut hh = sketch(0.2, 0.1, 11);
        feed(&mut hh, &corpus);
        let strict = hh.decode_with_threshold(40);
        assert!(strict.iter().all(|c| c.h_estimate >= 40));
    }

    #[test]
    fn space_scales_with_geometry() {
        use hindex_common::SpaceUsage;
        let small = sketch(0.5, 0.5, 12);
        let big = sketch(0.1, 0.01, 13);
        assert!(big.space_words() > small.space_words());
    }

    #[test]
    fn l2_decode_prefers_concentrated_impact() {
        // L1-heaviness vs L2-heaviness diverge: one author with h = 60
        // vs twelve authors with h = 18. L1 mass = 60 + 216 = 276;
        // L2 mass = 3600 + 12·324 = 7488. At ε = 0.2: L1 bar = 55.2
        // (everyone but the big author is out anyway), L2 bar² =
        // 1497.6 → h ≥ 38.7. The L2 decode keeps only the concentrated
        // author.
        let mut heavy = vec![60u64];
        heavy.extend(vec![18u64; 12]);
        let corpus = planted_heavy_hitters(&heavy, 0, 0, 0, 14);
        let mut found_l2_only_big = 0;
        for seed in 0..6 {
            let mut hh = sketch(0.2, 0.1, 100 + seed);
            feed(&mut hh, &corpus);
            let l2 = hh.decode_l2();
            if l2.iter().any(|c| c.author == AuthorId(0))
                && l2.iter().all(|c| c.author == AuthorId(0))
            {
                found_l2_only_big += 1;
            }
        }
        assert!(found_l2_only_big >= 5, "L2 decode unstable: {found_l2_only_big}/6");
    }

    /// Boundary regression: as ε and δ approach their open upper bound
    /// the float→usize geometry casts shrink toward zero; the `.max(1)`
    /// clamps must keep every dimension at least one so `new`, `push`,
    /// and the decoders stay well-defined.
    #[test]
    fn extreme_epsilon_delta_geometry_stays_positive() {
        let p = HeavyHittersParams::new(
            Epsilon::new(0.999_999).unwrap(),
            Delta::new(0.999_999).unwrap(),
        );
        // 2/ε² ≈ 2.0 → 2 buckets; log₂(1/(εδ)) ≈ 0 → clamped to 1 row.
        assert!(p.buckets() >= 1, "buckets collapsed to zero");
        assert_eq!(p.rows(), 1, "rows must clamp to one");

        let mut hh = HeavyHitters::new(p, &mut StdRng::seed_from_u64(0));
        hh.push(&hindex_stream::Paper::solo(1, 7, 50));
        // cap = ⌈1/ε⌉ = 2 here; the `.max(1)` guard matters when the
        // ceil lands on 1 exactly — decode must still return candidates.
        let out = hh.decode_with_threshold(0);
        assert!(out.len() <= 2);
        assert!(!out.is_empty(), "sole author lost at extreme ε");
    }

    #[test]
    fn zero_geometry_overrides_are_clamped() {
        let mut p = HeavyHittersParams::new(
            Epsilon::new(0.25).unwrap(),
            Delta::new(0.1).unwrap(),
        );
        p.buckets_override = Some(0);
        p.rows_override = Some(0);
        assert_eq!(p.buckets(), 1);
        assert_eq!(p.rows(), 1);
        // A 1×1 grid is a single Algorithm 7 detector; it must ingest
        // and decode without indexing past the (single-cell) grid.
        let mut hh = HeavyHitters::new(p, &mut StdRng::seed_from_u64(1));
        for i in 0..20 {
            hh.push(&hindex_stream::Paper::solo(i, 3, 10));
        }
        let out = hh.decode_with_threshold(0);
        assert!(out.iter().any(|c| c.author == AuthorId(3)), "{out:?}");
    }

    /// Tiny streams: 0, 1, and 2 papers through standard geometry. The
    /// `unwrap_or(0)` sentinels and the reservoir fill laws must hold
    /// at sizes far below the sketch's design scale.
    #[test]
    fn tiny_streams_estimate_without_panicking() {
        let hh = sketch(0.25, 0.1, 3);
        assert_eq!(hh.total_impact_estimate(), 0);
        assert!(hh.decode_l2().is_empty());

        let mut hh = sketch(0.25, 0.1, 3);
        hh.push(&hindex_stream::Paper::solo(0, 1, 4));
        assert!(hh.total_impact_estimate() <= 4);
        assert_eq!(hh.total_responses(), 4);

        let mut hh = sketch(0.25, 0.1, 3);
        hh.push(&hindex_stream::Paper::solo(0, 1, 4));
        hh.push(&hindex_stream::Paper::solo(1, 1, 6));
        let out = hh.decode_with_threshold(0);
        assert!(out.iter().any(|c| c.author == AuthorId(1)), "{out:?}");
    }
}
