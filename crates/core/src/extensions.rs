//! §5 extensions: streaming variants of the H-index.
//!
//! The paper closes by naming variations "based on different functions
//! of the number of responses with respect to the number of
//! publications like k publications with a total of k² responses".
//! Two of those are implemented here with the same exponential-level
//! machinery as Algorithm 1:
//!
//! * [`StreamingGIndex`] — the "total of k²" variant (Egghe's g-index):
//!   per level the sketch keeps a *count* and a *sum* of the elements
//!   clearing it; the top-k sum is then sandwiched between adjacent
//!   levels, giving a `(1−O(ε))` under-approximation of g.
//! * [`StreamingAlphaIndex`] — "at least k publications with `≥ α·k`
//!   responses each": Algorithm 1 with the thresholds scaled by α
//!   (`α = 1` recovers the H-index exactly).

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use hindex_common::{AggregateEstimator, Epsilon, Estimate, ExpGrid, Mergeable, SpaceUsage};

/// Streaming `(1−O(ε))` g-index estimator over aggregate streams.
#[derive(Debug, Clone)]
pub struct StreamingGIndex {
    grid: ExpGrid,
    /// Per top-level element counts (suffix-summed at query time).
    counts: Vec<u64>,
    /// Per top-level element sums.
    sums: Vec<u128>,
    /// Total elements seen, including zeros (g may count zero-citation
    /// papers toward k).
    n_seen: u64,
}

impl StreamingGIndex {
    /// Creates the estimator for accuracy `ε`.
    #[must_use]
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            grid: ExpGrid::new(epsilon.get()),
            counts: Vec::new(),
            sums: Vec::new(),
            n_seen: 0,
        }
    }

    /// Suffix aggregates: `(count ≥ t_i, sum of elements ≥ t_i)` per
    /// level.
    fn suffix(&self) -> Vec<(u64, u128)> {
        let mut out = vec![(0u64, 0u128); self.counts.len()];
        let mut c = 0u64;
        let mut s = 0u128;
        for i in (0..self.counts.len()).rev() {
            c += self.counts[i];
            s += self.sums[i];
            out[i] = (c, s);
        }
        out
    }

    /// Lower bound on the sum of the `k` largest elements, from the
    /// level aggregates.
    fn top_k_sum_lower(&self, k: u64, suffix: &[(u64, u128)]) -> u128 {
        if suffix.is_empty() || k == 0 {
            return 0;
        }
        // Find the deepest level m with count ≥ k; elements above level
        // m+1 are all in the top k, the remainder is filled at value
        // ≥ t_m.
        let mut m: Option<usize> = None;
        for (level, &(c, _)) in suffix.iter().enumerate() {
            if c >= k {
                m = Some(level);
            } else {
                break;
            }
        }
        let Some(m) = m else {
            // Fewer than k non-zero elements in total: the top-k sum is
            // simply everything.
            return suffix[0].1;
        };
        let (above_c, above_s) = if m + 1 < suffix.len() {
            suffix[m + 1]
        } else {
            (0, 0)
        };
        let fill = u128::from(k.saturating_sub(above_c));
        above_s + fill * u128::from(self.grid.int_threshold(m as u32))
    }
}

impl StreamingGIndex {
    /// FNV digest over the complete level state (counts, sums split
    /// into words, element tally), for bit-identity assertions around
    /// merges. Only compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        hindex_sketch::digest::fnv1a(
            std::iter::once(self.n_seen)
                .chain(self.counts.iter().copied())
                .chain(
                    self.sums
                        .iter()
                        .flat_map(|&s| [s as u64, (s >> 64) as u64]),
                ),
        )
    }
}

/// Merges another g-index sketch built with the same ε: level counts,
/// level sums and the element tally all add, so the merged estimate
/// equals the estimate over the concatenated streams, deterministically.
impl Mergeable for StreamingGIndex {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.grid, other.grid, "sketches must share epsilon");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
            self.sums.resize(other.sums.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, &b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.n_seen += other.n_seen;
    }
}

/// Payload: the grid, one shared level count, the per-level counts,
/// the per-level sums (u128), and the element tally. `counts` and
/// `sums` always resize together, so a single length serves both; the
/// lazy-materialisation invariant (no trailing all-zero level) is
/// re-validated on decode.
impl Snapshot for StreamingGIndex {
    const TAG: u8 = 19;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_nested(&self.grid);
        w.put_usize(self.counts.len());
        for &c in &self.counts {
            w.put_u64(c);
        }
        for &s in &self.sums {
            w.put_u128(s);
        }
        w.put_u64(self.n_seen);
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let grid = r.get_nested::<ExpGrid>()?;
        let len = r.get_count(24)?; // 8 count + 16 sum bytes per level
        let mut counts = Vec::with_capacity(len);
        for _ in 0..len {
            counts.push(r.get_u64()?);
        }
        let mut sums = Vec::with_capacity(len);
        for _ in 0..len {
            sums.push(r.get_u128()?);
        }
        if counts.last() == Some(&0) {
            return Err(SnapshotError::Invalid("trailing empty level"));
        }
        let n_seen = r.get_u64()?;
        Ok(Self { grid, counts, sums, n_seen })
    }
}

impl Estimate for StreamingGIndex {
    /// Estimates the g-index: the largest grid value `k` whose
    /// (under-approximated) top-k sum reaches `k²`. The result is
    /// `≤ g` and `≥ (1−O(ε))·g`.
    fn estimate(&self) -> u64 {
        let suffix = self.suffix();
        let mut best = 0u64;
        // Candidates: k = 1 and every grid threshold up to n_seen.
        let mut level = 0u32;
        loop {
            let k = self.grid.int_threshold(level);
            if k > self.n_seen {
                break;
            }
            let lower = self.top_k_sum_lower(k, &suffix);
            if lower >= u128::from(k) * u128::from(k) {
                best = best.max(k);
            }
            level += 1;
        }
        best
    }
}

impl AggregateEstimator for StreamingGIndex {
    fn ingest(&mut self, value: u64) {
        self.n_seen += 1;
        let Some(level) = self.grid.level_of(value) else {
            return;
        };
        let level = level as usize;
        if level >= self.counts.len() {
            self.counts.resize(level + 1, 0);
            self.sums.resize(level + 1, 0);
        }
        self.counts[level] += 1;
        self.sums[level] += u128::from(value);
    }
}

impl SpaceUsage for StreamingGIndex {
    fn space_words(&self) -> usize {
        // One count word and two sum words (u128) per level.
        3 * self.counts.len() + 1
    }
}

/// Streaming α-index: largest `k` with at least `k` elements `≥ α·k`
/// (`α = 1` is the H-index).
#[derive(Debug, Clone)]
pub struct StreamingAlphaIndex {
    grid: ExpGrid,
    alpha: f64,
    /// Per top-alpha-level counts.
    buckets: Vec<u64>,
}

impl StreamingAlphaIndex {
    /// Creates the estimator.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is finite and positive.
    #[must_use]
    pub fn new(epsilon: Epsilon, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Self {
            grid: ExpGrid::new(epsilon.get()),
            alpha,
            buckets: Vec::new(),
        }
    }

    /// The citation bar for the level's integer candidate
    /// `k = ⌈(1+ε)ⁱ⌉`: the smallest integer `≥ α·k`. Scaling the
    /// *integer* candidate (rather than the real threshold) keeps the
    /// certificate sound: `k` elements `≥ ⌈α·k⌉` prove the α-index is
    /// at least `k`.
    fn alpha_threshold(&self, level: u32) -> u64 {
        let t = self.alpha * self.grid.int_threshold(level) as f64;
        let nearest = t.round();
        if (t - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest as u64
        } else {
            t.ceil() as u64
        }
    }

    /// Whether `value` clears the scaled threshold of `level`, with the
    /// same beyond-`u64::MAX` guard as [`ExpGrid::clears`] (a saturated
    /// cast must not let `u64::MAX` clear every level).
    fn alpha_clears(&self, value: u64, level: u32) -> bool {
        if self.alpha * self.grid.threshold(level) > u64::MAX as f64 {
            return false;
        }
        value >= self.alpha_threshold(level)
    }

    /// Highest level whose scaled threshold `value` clears, or `None`.
    fn alpha_level_of(&self, value: u64) -> Option<u32> {
        if value == 0 || !self.alpha_clears(value, 0) {
            return None;
        }
        let guess = ((value as f64 / self.alpha).ln() / self.grid.base().ln()).floor();
        let mut level = if guess < 0.0 { 0 } else { guess as u32 };
        while !self.alpha_clears(value, level) {
            if level == 0 {
                return None;
            }
            level -= 1;
        }
        while self.alpha_clears(value, level + 1) {
            level += 1;
        }
        Some(level)
    }
}

impl Estimate for StreamingAlphaIndex {
    fn estimate(&self) -> u64 {
        let mut suffix = 0u64;
        for (level, &b) in self.buckets.iter().enumerate().rev() {
            suffix += b;
            let k = self.grid.int_threshold(level as u32);
            if suffix >= k {
                return k;
            }
        }
        0
    }
}

impl AggregateEstimator for StreamingAlphaIndex {
    fn ingest(&mut self, value: u64) {
        let Some(level) = self.alpha_level_of(value) else {
            return;
        };
        let level = level as usize;
        if level >= self.buckets.len() {
            self.buckets.resize(level + 1, 0);
        }
        self.buckets[level] += 1;
    }
}

impl SpaceUsage for StreamingAlphaIndex {
    fn space_words(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::variants::{alpha_index, g_index};
    use hindex_common::h_index;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).unwrap()
    }

    fn check_g(values: &[u64], e: f64) {
        let mut est = StreamingGIndex::new(eps(e));
        est.extend_from(values.iter().copied());
        let g = g_index(values);
        let got = est.estimate();
        assert!(got <= g, "over: got {got} g {g} (eps {e}) on {} values", values.len());
        assert!(
            got as f64 >= (1.0 - 2.5 * e) * g as f64,
            "under: got {got} g {g} (eps {e})"
        );
    }

    #[test]
    fn g_empty_and_zero() {
        let est = StreamingGIndex::new(eps(0.1));
        assert_eq!(est.estimate(), 0);
        let mut est = StreamingGIndex::new(eps(0.1));
        est.extend_from([0u64, 0]);
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn g_blockbuster_case() {
        // One 100-citation paper among zeros: g = 10 exactly.
        let mut values = vec![100u64];
        values.extend(vec![0u64; 50]);
        check_g(&values, 0.1);
        check_g(&values, 0.3);
    }

    #[test]
    fn g_on_shapes() {
        let staircase: Vec<u64> = (1..=500).rev().collect();
        let flat: Vec<u64> = vec![100; 300];
        for e in [0.05, 0.1, 0.2] {
            check_g(&staircase, e);
            check_g(&flat, e);
        }
    }

    #[test]
    fn g_random_streams() {
        let mut rng = StdRng::seed_from_u64(3);
        for case in 0..20 {
            let n = rng.random_range(10..500);
            let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..2000)).collect();
            check_g(&values, 0.15);
            let _ = case;
        }
    }

    #[test]
    fn alpha_one_tracks_h_index() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let n = rng.random_range(5..300);
            let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
            let mut est = StreamingAlphaIndex::new(eps(0.2), 1.0);
            est.extend_from(values.iter().copied());
            let h = h_index(&values);
            let got = est.estimate();
            assert!(got <= h, "got {got} h {h}");
            assert!(got as f64 >= (1.0 - 0.2) * h as f64, "got {got} h {h}");
        }
    }

    #[test]
    fn alpha_scaled_thresholds() {
        let mut rng = StdRng::seed_from_u64(5);
        for &alpha in &[0.5, 2.0, 5.0] {
            for _ in 0..10 {
                let n = rng.random_range(5..200);
                let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
                let mut est = StreamingAlphaIndex::new(eps(0.2), alpha);
                est.extend_from(values.iter().copied());
                let truth = alpha_index(&values, alpha);
                let got = est.estimate();
                assert!(got <= truth, "alpha {alpha}: got {got} truth {truth}");
                assert!(
                    got as f64 >= (1.0 - 0.25) * truth as f64 - 1.0,
                    "alpha {alpha}: got {got} truth {truth}"
                );
            }
        }
    }

    #[test]
    fn g_space_logarithmic() {
        let mut est = StreamingGIndex::new(eps(0.1));
        for v in [1u64, 1000, 1_000_000] {
            est.ingest(v);
        }
        assert!(est.space_words() < 500);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn alpha_zero_rejected() {
        let _ = StreamingAlphaIndex::new(eps(0.2), 0.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn prop_g_guarantee(values in proptest::collection::vec(0u64..5_000, 0..300)) {
            check_g(&values, 0.2);
        }

        #[test]
        fn prop_g_never_exceeds_n(values in proptest::collection::vec(0u64..100, 0..100)) {
            let mut est = StreamingGIndex::new(eps(0.2));
            est.extend_from(values.iter().copied());
            proptest::prop_assert!(est.estimate() <= values.len() as u64);
        }

        #[test]
        fn prop_alpha_upper_bound(
            values in proptest::collection::vec(0u64..2_000, 0..200),
            alpha_tenths in 2u32..50,
        ) {
            let alpha = f64::from(alpha_tenths) / 10.0;
            let mut est = StreamingAlphaIndex::new(eps(0.2), alpha);
            est.extend_from(values.iter().copied());
            proptest::prop_assert!(est.estimate() <= alpha_index(&values, alpha));
        }
    }
}
