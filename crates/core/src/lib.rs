//! The paper's streaming H-index algorithms (PODS 2017).
//!
//! One module per algorithm, in paper order:
//!
//! | Module | Paper | Guarantee | Space (words) |
//! |---|---|---|---|
//! | [`exponential_histogram`] | Alg. 1, Thm 5 | deterministic `(1−ε)h* ≤ ĥ ≤ h*`, any order | `≤ 2ε⁻¹ ln n` |
//! | [`shifting_window`] | Alg. 2, Thm 6 | same | `O(ε⁻¹ log ε⁻¹)`, independent of `n` |
//! | [`random_order`] | Alg. 3+4, Thm 9 | `(1±ε)` whp on random-order streams | six words above the `β/ε` bar |
//! | [`cash_register`] | Alg. 5+6, Thm 14 | `(1±ε)` multiplicative with a lower bound, or `±ε·n` additive, whp | `poly(1/ε, log(1/δ), log n)` |
//! | [`one_heavy_hitter`] | Alg. 7, Thm 17 | detects a `(1−ε)`-dominant author | `O(ε⁻¹ log n + s·log n)` |
//! | [`heavy_hitters`] | Alg. 8, Thm 18 | all `ε`-heavy authors, `(1±ε)` their h | `O(ε⁻² log(1/εδ))` 1-HH instances |
//! | [`extensions`] | §5 | streaming g-index & α-index variants | `O(ε⁻¹ log n)` |
//! | [`sliding_window`] | §5 ("publication dates") | H-index of the last `W` papers | `O(ε⁻¹ ε_w⁻¹ log n log W)` |
//! | [`turnstile`] | footnote 1 (negative responses) | H-index with retractions, `±ε·D` whp | `poly(1/ε, log(1/δ), log n)` |
//!
//! Every estimator implements the traits from `hindex-common` and
//! reports word-accurate space so the experiment suite can check the
//! theorem bounds directly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cash_register;
pub mod exponential_histogram;
pub mod extensions;
pub mod heavy_hitters;
pub mod one_heavy_hitter;
pub mod random_order;
pub mod shifting_window;
pub mod sliding_window;
pub mod timeline;
pub mod tracked_authors;
pub mod turnstile;

pub use cash_register::{CashRegisterHIndex, CashRegisterParams};
pub use exponential_histogram::{ExponentialHistogram, ExponentialHistogramParams};
pub use extensions::{StreamingAlphaIndex, StreamingGIndex};
pub use heavy_hitters::{HeavyHitterCandidate, HeavyHitters, HeavyHittersParams};
pub use one_heavy_hitter::{OneHeavyHitter, OneHeavyHitterOutcome};
pub use random_order::{RandomOrderEstimator, RandomOrderParams};
pub use shifting_window::ShiftingWindow;
pub use sliding_window::SlidingHIndex;
pub use timeline::Timeline;
pub use tracked_authors::{TrackedAuthorsAggregate, TrackedAuthorsCash};
pub use turnstile::{TurnstileHIndex, TurnstileParams};

/// One-stop imports.
pub mod prelude {
    pub use crate::cash_register::{CashRegisterHIndex, CashRegisterParams};
    pub use crate::exponential_histogram::{ExponentialHistogram, ExponentialHistogramParams};
    pub use crate::extensions::{StreamingAlphaIndex, StreamingGIndex};
    pub use crate::heavy_hitters::{HeavyHitterCandidate, HeavyHitters, HeavyHittersParams};
    pub use crate::one_heavy_hitter::{OneHeavyHitter, OneHeavyHitterOutcome};
    pub use crate::random_order::{RandomOrderEstimator, RandomOrderParams};
    pub use crate::shifting_window::ShiftingWindow;
    pub use crate::sliding_window::SlidingHIndex;
    pub use crate::timeline::Timeline;
    pub use crate::tracked_authors::{TrackedAuthorsAggregate, TrackedAuthorsCash};
    pub use crate::turnstile::{TurnstileHIndex, TurnstileParams};
}
