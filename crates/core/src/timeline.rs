//! Compressed H-index timelines.
//!
//! Platforms plot "impact over time". Naïvely that means re-querying
//! and storing the estimate at every step; [`Timeline`] exploits two
//! facts to compress the whole trajectory:
//!
//! * under aggregate/cash-register streams the H-index is
//!   **monotone**, so it changes at most `h_final` times;
//! * a `(1+γ)`-geometric value grid needs only the *crossing points*
//!   — `O(γ⁻¹ log h_final)` checkpoints reproduce the curve to within
//!   `(1+γ)` everywhere.
//!
//! `Timeline` wraps any estimator's outputs: feed it
//! `(step, estimate)` observations (every step, or whenever you
//! query); it stores a checkpoint only when the estimate crosses the
//! next grid level, and answers `value_at(step)` by binary search.

use hindex_common::SpaceUsage;

/// A `(1+γ)`-compressed monotone trajectory of H-index estimates.
#[derive(Debug, Clone)]
pub struct Timeline {
    gamma: f64,
    /// Checkpoints `(step, value)`, strictly increasing in both.
    points: Vec<(u64, u64)>,
}

impl Timeline {
    /// Creates a timeline with value resolution `γ` (each stored
    /// checkpoint is at least `(1+γ)×` the previous value).
    ///
    /// # Panics
    ///
    /// Panics unless `γ > 0`.
    #[must_use]
    pub fn new(gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma > 0.0, "gamma must be positive");
        Self {
            gamma,
            points: Vec::new(),
        }
    }

    /// Records one observation. Non-monotone dips (possible with
    /// randomized estimators' noise) are clamped — the recorded curve
    /// is the running maximum.
    pub fn observe(&mut self, step: u64, estimate: u64) {
        let last = self.points.last().copied();
        match last {
            None => {
                if estimate > 0 {
                    self.points.push((step, estimate));
                }
            }
            Some((_, v)) => {
                if (estimate as f64) >= (v as f64) * (1.0 + self.gamma) {
                    self.points.push((step, estimate));
                }
            }
        }
    }

    /// The recorded value in force at `step` (0 before the first
    /// checkpoint). Within `(1+γ)` of the true running maximum at every
    /// observed step.
    #[must_use]
    pub fn value_at(&self, step: u64) -> u64 {
        match self.points.binary_search_by_key(&step, |&(s, _)| s) {
            Ok(i) => self.points[i].1,
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// All checkpoints, oldest first.
    #[must_use]
    pub fn checkpoints(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Final recorded value.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.points.last().map_or(0, |&(_, v)| v)
    }
}

impl SpaceUsage for Timeline {
    fn space_words(&self) -> usize {
        2 * self.points.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::{AggregateEstimator, Epsilon, Estimate, h_index};

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(0.1);
        assert_eq!(t.value_at(0), 0);
        assert_eq!(t.value_at(100), 0);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn records_growth_and_answers_queries() {
        let mut t = Timeline::new(0.5);
        // Running maxima: 1, 2, 3, 10, 10, 40.
        for (step, v) in [(0u64, 1u64), (1, 2), (2, 3), (3, 10), (4, 10), (5, 40)] {
            t.observe(step, v);
        }
        // γ = 0.5 → checkpoints at 1, 2, 3, 10, 40 (each ≥ 1.5× prior:
        // 2 ≥ 1.5, 3 ≥ 3, 10 ≥ 4.5, 40 ≥ 15).
        assert_eq!(t.checkpoints(), &[(0, 1), (1, 2), (2, 3), (3, 10), (5, 40)]);
        assert_eq!(t.value_at(0), 1);
        assert_eq!(t.value_at(4), 10);
        assert_eq!(t.value_at(5), 40);
        assert_eq!(t.value_at(999), 40);
    }

    #[test]
    fn within_gamma_of_running_max() {
        let gamma = 0.2;
        let mut t = Timeline::new(gamma);
        let mut running_max = 0u64;
        let mut estimates = Vec::new();
        // A slowly growing estimate sequence.
        for step in 0..1000u64 {
            let est = (step as f64).sqrt() as u64;
            running_max = running_max.max(est);
            t.observe(step, est);
            estimates.push(running_max);
        }
        for step in 0..1000u64 {
            let recorded = t.value_at(step);
            let truth = estimates[step as usize];
            assert!(recorded <= truth);
            assert!(
                (recorded as f64) * (1.0 + gamma) >= truth as f64,
                "step {step}: {recorded} vs {truth}"
            );
        }
    }

    #[test]
    fn checkpoint_count_logarithmic() {
        let mut t = Timeline::new(0.1);
        for step in 0..1_000_000u64 {
            t.observe(step, step);
        }
        // ≈ log_{1.1}(1e6) ≈ 145 checkpoints, not a million.
        let n = t.checkpoints().len();
        assert!(n <= 150, "{n} checkpoints");
    }

    #[test]
    fn pairs_with_a_real_estimator() {
        let mut est = crate::ShiftingWindow::new(Epsilon::new(0.1).unwrap());
        let mut t = Timeline::new(0.25);
        let values: Vec<u64> = (1..=5000).collect();
        for (step, &v) in values.iter().enumerate() {
            est.ingest(v);
            t.observe(step as u64, est.estimate());
        }
        let final_truth = h_index(&values);
        assert!(t.current() as f64 >= 0.7 * final_truth as f64);
        // Early steps recorded small values.
        assert!(t.value_at(10) <= 20);
        use hindex_common::SpaceUsage;
        assert!(t.space_words() < 150);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn zero_gamma_rejected() {
        let _ = Timeline::new(0.0);
    }
}
