//! Algorithm 2 / Theorem 6: the shifting window.
//!
//! Algorithm 1 keeps a counter for every grid level up to `log_{1+ε} n`.
//! The paper's observation: only a window of `O(ε⁻¹ log ε⁻¹)`
//! *consecutive* levels is ever decision-relevant. The window
//! `[lo, lo+r]` slides up: when the counter one above the bottom
//! reaches its own threshold, the bottom counter is discarded and a
//! fresh zero counter opens at the top.
//!
//! A counter created late misses the elements that cleared its level
//! before its creation. With window length `r ≥ log_{1+ε'}(3/ε') + 2`
//! (`ε' = ε/3`, the theorem's internal sharpening) that undercount is
//! at most `ε'·t_j` for level `j`: unwinding the shift triggers, the
//! missed elements for level `j` number at most
//! `Σ_k (t_{j−k·r} + 1) ≤ t_j (1+ε')^{−r}/(1−(1+ε')^{−r}) + j/r ≤ ε'·t_j`.
//! The query therefore accepts a level once its (undercounting) counter
//! reaches `(1−ε')·t_j` and reports `⌈(1−ε')·t_j⌉`, which keeps both
//! sides of the guarantee:
//!
//! * **never over**: a raw count `≥ (1−ε')t_j` of elements `≥ t_j`
//!   means at least `⌈(1−ε')t_j⌉` elements that large exist, so
//!   `h* ≥ ⌈(1−ε')t_j⌉`;
//! * **never more than ε under**: the level `i*` with
//!   `t_{i*} ≤ h* < t_{i*+1}` is always inside the window (a shift past
//!   it would certify `h* > h*`; a lag behind it would leave a counter
//!   `≥ (3/ε' − ε')·t_{lo+1}` unshifted), its counter is at least
//!   `h* − ε'·t_{i*} ≥ (1−ε')t_{i*}`, and
//!   `⌈(1−ε')t_{i*}⌉ ≥ (1−ε')h*/(1+ε') ≥ (1−ε)h*`.
//!
//! Space: `r + 2` words, independent of `n` — the point of Theorem 6.

use hindex_common::{AggregateEstimator, Epsilon, Estimate, ExpGrid, SpaceUsage};
use std::collections::VecDeque;

/// Deterministic `(1−ε)`-approximate streaming H-index in
/// `O(ε⁻¹ log ε⁻¹)` words (Algorithm 2).
///
/// ```
/// use hindex_common::{AggregateEstimator, Epsilon, Estimate, SpaceUsage};
/// use hindex_core::ShiftingWindow;
///
/// let mut est = ShiftingWindow::new(Epsilon::new(0.1).unwrap());
/// est.extend_from((1..=100_000).rev()); // h* = 50 000
/// assert!(est.estimate() >= 45_000);
/// assert!(est.space_words() < 200); // independent of the stream
/// ```
#[derive(Debug, Clone)]
pub struct ShiftingWindow {
    grid: ExpGrid,
    eps_inner: f64,
    /// Counters for levels `lo ..= lo + counters.len() − 1`.
    counters: VecDeque<u64>,
    lo: u32,
    /// Optional saturation level: once the window bottom passes this
    /// level the estimator freezes (used by Algorithm 3, which only
    /// needs this branch below a cap `β`).
    cap_level: Option<u32>,
    saturated: bool,
}

impl ShiftingWindow {
    /// Creates the estimator for accuracy `ε`.
    #[must_use]
    pub fn new(epsilon: Epsilon) -> Self {
        Self::build(epsilon, None)
    }

    /// Creates the estimator with estimates capped at roughly `cap`:
    /// once the window certifies an H-index above `cap` the estimator
    /// freezes and [`Self::is_saturated`] turns true. Algorithm 3 uses
    /// this to bound this branch's words to `log(β/ε)` bits each.
    #[must_use]
    pub fn with_cap(epsilon: Epsilon, cap: u64) -> Self {
        Self::build(epsilon, Some(cap))
    }

    fn build(epsilon: Epsilon, cap: Option<u64>) -> Self {
        let eps_inner = epsilon.third().get();
        let r = ((3.0 / eps_inner).ln() / (1.0 + eps_inner).ln()).ceil() as usize + 2;
        Self::with_window_len(epsilon, r, cap)
    }

    /// Creates the estimator with an explicit window length `r + 1`
    /// counters, bypassing the Theorem 6 sizing. Shorter windows void
    /// the undercount analysis — this exists for the E12 ablation that
    /// measures exactly how the guarantee degrades.
    #[must_use]
    pub fn with_window_len(epsilon: Epsilon, r: usize, cap: Option<u64>) -> Self {
        let eps_inner = epsilon.third().get();
        let grid = ExpGrid::new(eps_inner);
        let cap_level = cap.map(|c| grid.level_of(c.max(1)).unwrap_or(0) + 1);
        Self {
            grid,
            eps_inner,
            counters: VecDeque::from(vec![0u64; r.max(1) + 1]),
            lo: 0,
            cap_level,
            saturated: false,
        }
    }

    /// Whether a configured cap has been exceeded (see
    /// [`Self::with_cap`]).
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// The lowest window level (number of shifts so far).
    #[must_use]
    pub fn window_bottom(&self) -> u32 {
        self.lo
    }

    fn hi(&self) -> u32 {
        self.lo + self.counters.len() as u32 - 1
    }

    fn shift_if_due(&mut self) {
        while self.counters.len() >= 2 {
            let next_level = self.lo + 1;
            if self.counters[1] < self.grid.int_threshold(next_level) {
                break;
            }
            if let Some(cap_level) = self.cap_level {
                if next_level > cap_level {
                    self.saturated = true;
                    return;
                }
            }
            self.counters.pop_front();
            self.counters.push_back(0);
            self.lo += 1;
        }
    }
}

impl Estimate for ShiftingWindow {
    fn estimate(&self) -> u64 {
        let slack = 1.0 - self.eps_inner;
        for idx in (0..self.counters.len()).rev() {
            let level = self.lo + idx as u32;
            let t = self.grid.threshold(level);
            let bar = slack * t;
            if self.counters[idx] as f64 >= bar {
                return bar.ceil() as u64;
            }
        }
        0
    }
}

impl AggregateEstimator for ShiftingWindow {
    fn ingest(&mut self, value: u64) {
        if self.saturated {
            return;
        }
        let Some(level) = self.grid.level_of(value) else {
            return;
        };
        if level < self.lo {
            return; // below the window: decision-irrelevant by now
        }
        let top = level.min(self.hi());
        for j in 0..=(top - self.lo) as usize {
            self.counters[j] += 1;
        }
        self.shift_if_due();
    }

    /// Batched ingest via headroom segmentation. A shift can only fire
    /// once `counters[1]` reaches the next level's threshold, and each
    /// item raises it by at most one — so the next
    /// `threshold − counters[1]` items are guaranteed shift-free, the
    /// window bounds `[lo, hi]` are constant across them, and their
    /// prefix increments commute into one difference-array sweep. The
    /// shift cascade (and any cap saturation) then runs at the segment
    /// boundary, exactly where the scalar path would have run it, so
    /// the final state is bit-identical.
    fn ingest_batch(&mut self, values: &[u64]) {
        // Scratch difference array, zeroed incrementally: only the
        // prefix a segment actually touched is swept and re-cleared,
        // so light segments (few or low-level items) stay near the
        // scalar path's cost.
        let mut diff = vec![0i64; self.counters.len() + 1];
        let mut pos = 0;
        while pos < values.len() {
            if self.saturated {
                return;
            }
            let headroom = self
                .grid
                .int_threshold(self.lo + 1)
                .saturating_sub(self.counters[1])
                .max(1) as usize;
            let seg = headroom.min(values.len() - pos);
            let hi = self.hi();
            let mut hi_idx = 0usize; // one past the largest touched index
            for &value in &values[pos..pos + seg] {
                let Some(level) = self.grid.level_of(value) else {
                    continue;
                };
                if level < self.lo {
                    continue;
                }
                let top_idx = (level.min(hi) - self.lo) as usize;
                diff[0] += 1;
                diff[top_idx + 1] -= 1;
                hi_idx = hi_idx.max(top_idx + 1);
            }
            if hi_idx > 0 {
                let mut run = 0i64;
                for (j, d) in diff[..hi_idx].iter_mut().enumerate() {
                    run += *d;
                    *d = 0;
                    // `run` counts segment items whose clamped level is
                    // ≥ lo + j; never negative, zero beyond `hi_idx`.
                    self.counters[j] = self.counters[j].saturating_add(run as u64);
                }
                diff[hi_idx] = 0;
                self.shift_if_due();
            }
            // `pos + seg ≤ values.len()` by construction of `seg`;
            // saturating keeps that claim overflow-proof.
            pos = pos.saturating_add(seg);
        }
    }
}

impl SpaceUsage for ShiftingWindow {
    fn space_words(&self) -> usize {
        // Window counters plus the bottom-level index.
        self.counters.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).unwrap()
    }

    fn check_guarantee(values: &[u64], e: f64) {
        let mut est = ShiftingWindow::new(eps(e));
        est.extend_from(values.iter().copied());
        let h = h_index(values);
        let got = est.estimate();
        assert!(got <= h, "over-estimate: got {got} truth {h} (eps {e})");
        assert!(
            got as f64 >= (1.0 - e) * h as f64,
            "under-estimate: got {got} truth {h} (eps {e})"
        );
    }

    #[test]
    fn empty_and_zeros() {
        let est = ShiftingWindow::new(eps(0.2));
        assert_eq!(est.estimate(), 0);
        let mut est = ShiftingWindow::new(eps(0.2));
        est.extend_from([0u64, 0]);
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn paper_example() {
        check_guarantee(&[5, 5, 6, 5, 5, 6, 5, 5, 5, 5], 0.1);
    }

    #[test]
    fn guarantee_on_adversarial_shapes() {
        let staircase_up: Vec<u64> = (1..=2000).collect();
        let staircase_down: Vec<u64> = (1..=2000).rev().collect();
        let flat: Vec<u64> = vec![777; 1500];
        // All-huge values: every element clears every window level —
        // stresses the shifting cascade.
        let all_huge: Vec<u64> = vec![1_000_000; 1000];
        // Support arrives last: counters for high levels are young.
        let mut big_last: Vec<u64> = vec![3; 5000];
        big_last.extend(vec![10_000u64; 600]);
        for e in [0.1, 0.2, 0.3, 0.5] {
            check_guarantee(&staircase_up, e);
            check_guarantee(&staircase_down, e);
            check_guarantee(&flat, e);
            check_guarantee(&all_huge, e);
            check_guarantee(&big_last, e);
        }
    }

    #[test]
    fn tight_epsilons_still_hold() {
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (0..3000).map(|_| rng.random_range(0..5000)).collect();
        for e in [0.05, 0.07] {
            check_guarantee(&values, e);
        }
    }

    #[test]
    fn space_independent_of_stream_length() {
        let mut est = ShiftingWindow::new(eps(0.2));
        let before = est.space_words();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            est.ingest(rng.random_range(0..1_000_000));
        }
        assert_eq!(est.space_words(), before, "window grew");
    }

    #[test]
    fn space_bound_of_theorem_6() {
        // ≤ 6 ε⁻¹ log(3 ε⁻¹) + O(1) words.
        for e in [0.05, 0.1, 0.2, 0.5] {
            let est = ShiftingWindow::new(eps(e));
            let bound = 6.0 / e * (3.0 / e).log2() + 8.0;
            assert!(
                (est.space_words() as f64) <= bound,
                "eps {e}: {} words > {bound}",
                est.space_words()
            );
        }
    }

    #[test]
    fn matches_exponential_histogram_closely() {
        // Both are (1−ε) approximations; they need not be equal, but on
        // a fixed stream both must straddle the truth.
        use crate::exponential_histogram::ExponentialHistogram;
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..5000).map(|_| rng.random_range(0..10_000)).collect();
        let h = h_index(&values);
        let e = 0.2;
        let mut a = ExponentialHistogram::new(eps(e));
        let mut b = ShiftingWindow::new(eps(e));
        a.extend_from(values.iter().copied());
        b.extend_from(values.iter().copied());
        for got in [a.estimate(), b.estimate()] {
            assert!(got <= h && got as f64 >= (1.0 - e) * h as f64);
        }
    }

    #[test]
    fn cap_freezes_at_beta() {
        let mut est = ShiftingWindow::with_cap(eps(0.2), 50);
        for _ in 0..10_000u64 {
            est.ingest(1_000_000);
        }
        assert!(est.is_saturated());
        // Saturation implies the true h exceeded the cap region; the
        // frozen estimate is still a valid lower bound.
        assert!(est.estimate() >= 50 / 2);
    }

    fn assert_same_state(batched: &ShiftingWindow, scalar: &ShiftingWindow) {
        assert_eq!(batched.counters, scalar.counters);
        assert_eq!(batched.lo, scalar.lo);
        assert_eq!(batched.saturated, scalar.saturated);
        assert_eq!(batched.estimate(), scalar.estimate());
    }

    #[test]
    fn batch_ingest_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(17);
        // Heavy tail so the window shifts many times mid-stream.
        let values: Vec<u64> = (0..6000)
            .map(|_| match rng.random_range(0..4u32) {
                0 => 0,
                1 => rng.random_range(1..50),
                _ => rng.random_range(50..200_000),
            })
            .collect();
        for e in [0.08, 0.2, 0.5] {
            let mut scalar = ShiftingWindow::new(eps(e));
            let mut batched = ShiftingWindow::new(eps(e));
            for &v in &values {
                scalar.ingest(v);
            }
            for chunk in values.chunks(997) {
                batched.ingest_batch(chunk);
            }
            assert_same_state(&batched, &scalar);
        }
    }

    #[test]
    fn batch_ingest_saturates_at_the_same_item() {
        // All-huge input drives the cascade into the cap; the batch
        // path must freeze with the identical counter image.
        let values = vec![1_000_000u64; 5000];
        let mut scalar = ShiftingWindow::with_cap(eps(0.2), 40);
        let mut batched = ShiftingWindow::with_cap(eps(0.2), 40);
        for &v in &values {
            scalar.ingest(v);
        }
        batched.ingest_batch(&values);
        assert!(batched.is_saturated());
        assert_same_state(&batched, &scalar);
    }

    #[test]
    fn batch_ingest_single_items_match_scalar() {
        // Degenerate batches of one exercise the headroom clamp.
        let mut scalar = ShiftingWindow::new(eps(0.3));
        let mut batched = ShiftingWindow::new(eps(0.3));
        for v in (0..500u64).map(|i| (i * 31) % 700) {
            scalar.ingest(v);
            batched.ingest_batch(&[v]);
        }
        assert_same_state(&batched, &scalar);
    }

    #[test]
    fn uncapped_never_saturates() {
        let mut est = ShiftingWindow::new(eps(0.2));
        for _ in 0..10_000u64 {
            est.ingest(1_000_000);
        }
        assert!(!est.is_saturated());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

        #[test]
        fn prop_guarantee_random_streams(
            values in proptest::collection::vec(0u64..50_000, 0..500),
            e_centi in 8u32..90,
        ) {
            let e = f64::from(e_centi) / 100.0;
            let mut est = ShiftingWindow::new(eps(e));
            est.extend_from(values.iter().copied());
            let h = h_index(&values);
            let got = est.estimate();
            proptest::prop_assert!(got <= h, "got {} truth {}", got, h);
            proptest::prop_assert!(got as f64 >= (1.0 - e) * h as f64, "got {} truth {}", got, h);
        }

        #[test]
        fn prop_guarantee_sorted_orders(
            mut values in proptest::collection::vec(0u64..50_000, 0..500),
            ascending in proptest::bool::ANY,
        ) {
            if ascending {
                values.sort_unstable();
            } else {
                values.sort_unstable_by(|a, b| b.cmp(a));
            }
            let e = 0.15;
            let mut est = ShiftingWindow::new(eps(e));
            est.extend_from(values.iter().copied());
            let h = h_index(&values);
            let got = est.estimate();
            proptest::prop_assert!(got <= h);
            proptest::prop_assert!(got as f64 >= (1.0 - e) * h as f64);
        }
    }
}
