//! Algorithm 7 / Theorem 17: detecting a single dominant author.
//!
//! Given a stream of papers `(p, a₁ … a_y, c_p)`, distinguish:
//!
//! 1. some author's H-index accounts for a `(1−ε)` fraction of the
//!    combined H-impact of the stream — return that author with an
//!    estimate of the combined H-index, versus
//! 2. no such author exists (noise, or several comparable authors) —
//!    return [`OneHeavyHitterOutcome::Fail`].
//!
//! Mechanism: Algorithm 1's exponential histogram runs over the
//! citation counts, and every threshold level additionally keeps a
//! uniform [`Reservoir`] of `s` author-lists sampled from the papers
//! clearing that level. At the end, the decode looks at the sample of
//! the *winning* level `i*` (the histogram's answer): if the stream's
//! H-impact is dominated by one author, that author appears on a
//! `(1−ε)` fraction of the H-support papers, hence on a majority of
//! the sample whp (Chernoff + union bound over the `log_{1+ε} n`
//! levels — this is where the paper's `s = 2 log(log n/δ)` comes from).
//!
//! **Decode concretization (the "new decoding" the paper's intro
//! promises, made explicit here):** a `(1−ε)`-fraction test needs a
//! sample large enough to resolve ε, so the reservoir capacity is
//! `max(⌈2 log₂(log₂ n_max / δ)⌉, ⌈3/ε⌉)` and the test accepts the
//! plurality author when it covers at least `(1 − ε − slack)` of the
//! sample, `slack = ε/2`.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use hindex_common::{Epsilon, ExpGrid, Mergeable, SpaceUsage};
use hindex_sketch::Reservoir;
use hindex_stream::{AuthorId, Paper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::rc::Rc;

/// Result of [`OneHeavyHitter::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OneHeavyHitterOutcome {
    /// One author dominates the bucket; their H-index is approximated
    /// by `h_estimate`.
    Author {
        /// The dominant author.
        author: AuthorId,
        /// `(1−ε)`-approximation of the bucket's combined H-index,
        /// which under dominance approximates the author's own.
        h_estimate: u64,
    },
    /// No single dominant author (noisy stream or competing heavy
    /// hitters).
    Fail,
}

/// Streaming single-heavy-hitter detector (Algorithm 7).
#[derive(Debug, Clone)]
pub struct OneHeavyHitter {
    epsilon: f64,
    grid: ExpGrid,
    /// `buckets[i]` = papers whose highest cleared level is exactly `i`.
    buckets: Vec<u64>,
    /// Per-level uniform samples of the author lists of papers
    /// clearing the level.
    reservoirs: Vec<Reservoir<Rc<[AuthorId]>>>,
    sample_size: usize,
    rng: StdRng,
    papers_seen: u64,
}

impl OneHeavyHitter {
    /// Creates a detector.
    ///
    /// `delta` controls the per-level sample-size term
    /// `⌈2 log₂(64/δ)⌉` (the paper's `2 log(log n/δ)` with
    /// `log n ≤ 64` for `u64` counts).
    #[must_use]
    pub fn new<R: Rng + ?Sized>(epsilon: Epsilon, delta: f64, rng: &mut R) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let e = epsilon.get();
        let s_conf = (2.0 * (64.0 / delta).log2()).ceil() as usize;
        let s_eps = (3.0 / e).ceil() as usize;
        Self {
            epsilon: e,
            grid: ExpGrid::new(e),
            buckets: Vec::new(),
            reservoirs: Vec::new(),
            sample_size: s_conf.max(s_eps),
            rng: StdRng::seed_from_u64(rng.random()),
            papers_seen: 0,
        }
    }

    /// The per-level reservoir capacity in use.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Number of papers consumed.
    #[must_use]
    pub fn papers_seen(&self) -> u64 {
        self.papers_seen
    }

    /// Feeds one paper tuple.
    pub fn push(&mut self, paper: &Paper) {
        self.push_parts(&paper.authors, paper.citations);
    }

    /// Feeds one paper given as `(authors, citations)` (used by
    /// Algorithm 8, which routes papers without materializing `Paper`
    /// values per bucket).
    pub fn push_parts(&mut self, authors: &[AuthorId], citations: u64) {
        self.papers_seen += 1;
        let Some(level) = self.grid.level_of(citations) else {
            return;
        };
        let level = level as usize;
        if level >= self.buckets.len() {
            self.buckets.resize(level + 1, 0);
            self.reservoirs
                .resize_with(level + 1, || Reservoir::new(self.sample_size));
        }
        self.buckets[level] += 1;
        let shared: Rc<[AuthorId]> = Rc::from(authors);
        for r in &mut self.reservoirs[..=level] {
            r.offer(Rc::clone(&shared), &mut self.rng);
        }
    }

    /// The exponential-histogram estimate of the bucket's combined
    /// H-index (Algorithm 1 embedded in Algorithm 7), together with the
    /// winning level.
    #[must_use]
    pub fn combined_h_estimate(&self) -> (u64, Option<usize>) {
        let mut suffix = 0u64;
        for (level, &b) in self.buckets.iter().enumerate().rev() {
            suffix += b;
            let t = self.grid.int_threshold(level as u32);
            if suffix >= t {
                return (t, Some(level));
            }
        }
        (0, None)
    }

    /// All authors covering a `(1−ε)` fraction of the winning level's
    /// sample, with the combined-H estimate. Usually zero or one
    /// author; fully co-authored streams can qualify several, and
    /// Algorithm 8's decode wants them all.
    #[must_use]
    pub fn decode_candidates(&self) -> Vec<(AuthorId, u64)> {
        let (h_estimate, Some(level)) = self.combined_h_estimate() else {
            return Vec::new();
        };
        // `combined_h_estimate` only returns levels it indexed itself.
        debug_assert!(level < self.reservoirs.len());
        let sample = self.reservoirs[level].items();
        if sample.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<AuthorId, usize> = HashMap::new();
        for authors in sample {
            for &a in authors.iter() {
                *counts.entry(a).or_default() += 1;
            }
        }
        let bar = (1.0 - 1.5 * self.epsilon) * sample.len() as f64;
        let mut qualifying: Vec<(AuthorId, u64)> = counts
            .into_iter()
            .filter(|&(_, c)| c as f64 >= bar)
            .map(|(a, _)| (a, h_estimate))
            .collect();
        qualifying.sort_unstable_by_key(|&(a, _)| a);
        qualifying
    }

    /// Runs the end-of-stream decode, Theorem 17 style: the single
    /// dominant author, or [`OneHeavyHitterOutcome::Fail`]. When
    /// several co-authors tie above the bar, the smallest author id is
    /// reported (use [`Self::decode_candidates`] to see all of them).
    #[must_use]
    pub fn decode(&self) -> OneHeavyHitterOutcome {
        match self.decode_candidates().into_iter().next() {
            Some((author, h_estimate)) => OneHeavyHitterOutcome::Author { author, h_estimate },
            None => OneHeavyHitterOutcome::Fail,
        }
    }
}

/// Payload: `ε`, the reservoir capacity, the paper tally, the embedded
/// generator's four state words, then per materialised level its
/// bucket count and reservoir (`seen`, then each retained author list
/// as a length-prefixed id sequence). `Rc` sharing between levels is
/// not preserved — the restored detector holds equal, unshared lists —
/// which changes memory footprint but no observable state. Reservoirs
/// are rebuilt through [`Reservoir::from_parts`], so the fill law is
/// re-validated totally; the histogram's no-trailing-zero invariant is
/// checked like the standalone exponential histogram's.
impl Snapshot for OneHeavyHitter {
    const TAG: u8 = 17;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_f64(self.epsilon);
        w.put_usize(self.sample_size);
        w.put_u64(self.papers_seen);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.buckets.len());
        for (level, &b) in self.buckets.iter().enumerate() {
            w.put_u64(b);
            let res = &self.reservoirs[level];
            w.put_u64(res.seen());
            w.put_usize(res.items().len());
            for authors in res.items() {
                w.put_usize(authors.len());
                for a in authors.iter() {
                    w.put_u64(a.0);
                }
            }
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let epsilon = r.get_f64()?;
        if !(epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0) {
            return Err(SnapshotError::Invalid("epsilon outside (0, 1)"));
        }
        let sample_size = r.get_usize()?;
        if sample_size == 0 {
            return Err(SnapshotError::Invalid("sample size must be positive"));
        }
        let papers_seen = r.get_u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        // Each level carries at least 24 bytes (bucket, seen, item
        // count), which bounds the pre-allocation.
        let levels = r.get_count(24)?;
        let mut buckets = Vec::with_capacity(levels);
        let mut reservoirs = Vec::with_capacity(levels);
        for _ in 0..levels {
            buckets.push(r.get_u64()?);
            let seen = r.get_u64()?;
            let item_count = r.get_count(8)?;
            let mut items: Vec<Rc<[AuthorId]>> = Vec::with_capacity(item_count);
            for _ in 0..item_count {
                let authors = r.get_count(8)?;
                let mut list = Vec::with_capacity(authors);
                for _ in 0..authors {
                    list.push(AuthorId(r.get_u64()?));
                }
                items.push(Rc::from(list));
            }
            let res = Reservoir::from_parts(sample_size, items, seen)
                .ok_or(SnapshotError::Invalid("reservoir fill law violated"))?;
            reservoirs.push(res);
        }
        if buckets.last() == Some(&0) {
            return Err(SnapshotError::Invalid("trailing zero bucket"));
        }
        Ok(Self {
            epsilon,
            grid: ExpGrid::new(epsilon),
            buckets,
            reservoirs,
            sample_size,
            rng: StdRng::from_state(state),
            papers_seen,
        })
    }
}

impl OneHeavyHitter {
    /// FNV digest over the logical detector state — level buckets,
    /// per-level reservoir contents, and the paper tally. The RNG is
    /// deliberately excluded: reservoir merges are distributional, so
    /// the audits compare the observable words, and two detectors that
    /// agree on every observable word are interchangeable even if
    /// their future sampling streams differ. Only compiled under
    /// `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut words: Vec<u64> = Vec::with_capacity(self.buckets.len() + 4);
        words.push(self.epsilon.to_bits());
        words.push(self.sample_size as u64);
        words.push(self.papers_seen);
        words.push(self.buckets.len() as u64);
        words.extend(self.buckets.iter().copied());
        for r in &self.reservoirs {
            words.push(r.seen());
            words.push(r.items().len() as u64);
            for authors in r.items() {
                words.push(authors.len() as u64);
                words.extend(authors.iter().map(|a| a.0));
            }
        }
        hindex_sketch::digest::fnv1a(words)
    }
}

/// Merges a same-parameters detector fed a disjoint shard of the
/// stream. The embedded exponential histogram merges exactly (bucket
/// counts add levelwise); the per-level reservoirs merge via
/// [`Reservoir::merge_with`], so the merged sample is *distributionally*
/// a uniform sample of the union — decode outcomes match single-stream
/// ingestion in distribution, not bit-for-bit. Randomness for the
/// reservoir merge is drawn from `self`'s internal RNG.
impl Mergeable for OneHeavyHitter {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.grid, other.grid, "detectors must share epsilon");
        assert_eq!(
            self.sample_size, other.sample_size,
            "detectors must share sample size"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
            self.reservoirs
                .resize_with(other.reservoirs.len(), || Reservoir::new(self.sample_size));
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        for (r, o) in self.reservoirs.iter_mut().zip(&other.reservoirs) {
            r.merge_with(o, &mut self.rng);
        }
        self.papers_seen += other.papers_seen;
    }
}

impl SpaceUsage for OneHeavyHitter {
    fn space_words(&self) -> usize {
        let sample_words: usize = self
            .reservoirs
            .iter()
            .map(|r| r.items().iter().map(|a| a.len() + 1).sum::<usize>() + 1)
            .sum();
        self.buckets.len() + sample_words + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_stream::generator::planted_heavy_hitters;
    use hindex_stream::Corpus;

    fn detector(e: f64, seed: u64) -> OneHeavyHitter {
        let mut rng = StdRng::seed_from_u64(seed);
        OneHeavyHitter::new(Epsilon::new(e).unwrap(), 0.05, &mut rng)
    }

    fn feed(det: &mut OneHeavyHitter, corpus: &Corpus) {
        for p in corpus.papers() {
            det.push(p);
        }
    }

    #[test]
    fn empty_stream_fails() {
        assert_eq!(detector(0.2, 0).decode(), OneHeavyHitterOutcome::Fail);
    }

    #[test]
    fn single_author_stream_detected() {
        // All papers by one author: trivially 1-heavy.
        let corpus = planted_heavy_hitters(&[50], 0, 0, 0, 1);
        let truth = corpus.ground_truth();
        let mut hits = 0;
        for seed in 0..20 {
            let mut det = detector(0.2, seed);
            feed(&mut det, &corpus);
            if let OneHeavyHitterOutcome::Author { author, h_estimate } = det.decode() {
                assert_eq!(author, AuthorId(0));
                let h = truth.per_author[&AuthorId(0)];
                assert!(
                    h_estimate <= h && h_estimate as f64 >= 0.8 * h as f64,
                    "seed {seed}: est {h_estimate} truth {h}"
                );
                hits += 1;
            }
        }
        assert!(hits >= 19, "detected only {hits}/20");
    }

    #[test]
    fn dominant_author_with_light_noise_detected() {
        // One author with h = 60; noise authors contribute papers whose
        // citations stay below the winning threshold region.
        let corpus = planted_heavy_hitters(&[60], 30, 4, 3, 2);
        let mut hits = 0;
        for seed in 0..20 {
            let mut det = detector(0.25, seed);
            feed(&mut det, &corpus);
            if let OneHeavyHitterOutcome::Author { author, .. } = det.decode() {
                assert_eq!(author, AuthorId(0), "seed {seed}");
                hits += 1;
            }
        }
        assert!(hits >= 17, "detected only {hits}/20");
    }

    #[test]
    fn two_equal_authors_fail() {
        // Two authors with identical heavy profiles: neither is
        // (1−ε)-dominant, so the decode must not certify either.
        let corpus = planted_heavy_hitters(&[40, 40], 0, 0, 0, 3);
        let mut fails = 0;
        for seed in 0..20 {
            let mut det = detector(0.2, seed);
            feed(&mut det, &corpus);
            if det.decode() == OneHeavyHitterOutcome::Fail {
                fails += 1;
            }
        }
        assert!(fails >= 17, "only {fails}/20 runs failed as required");
    }

    #[test]
    fn noise_only_stream_fails_or_reports_tiny() {
        // Many authors, none heavy: if anything is returned its
        // h-estimate must be small.
        let corpus = planted_heavy_hitters(&[], 100, 5, 4, 4);
        for seed in 0..10 {
            let mut det = detector(0.2, seed);
            feed(&mut det, &corpus);
            if let OneHeavyHitterOutcome::Author { h_estimate, .. } = det.decode() {
                assert!(h_estimate <= 6, "seed {seed}: reported h {h_estimate}");
            }
        }
    }

    #[test]
    fn multi_author_papers_attribute_to_all() {
        // Papers co-authored by (0, 1) everywhere: both authors cover
        // 100% of the support, the plurality tie-break must still
        // certify one of them.
        use hindex_stream::Paper;
        let papers: Vec<Paper> = (0..50)
            .map(|i| Paper::with_authors(i, &[0, 1], 60))
            .collect();
        let corpus = Corpus::from_papers(papers);
        let mut det = detector(0.2, 7);
        feed(&mut det, &corpus);
        match det.decode() {
            OneHeavyHitterOutcome::Author { author, .. } => {
                assert!(author == AuthorId(0) || author == AuthorId(1));
            }
            OneHeavyHitterOutcome::Fail => panic!("dominant co-authors not detected"),
        }
    }

    #[test]
    fn h_estimate_is_histogram_estimate() {
        let corpus = planted_heavy_hitters(&[30], 0, 0, 0, 5);
        let mut det = detector(0.2, 8);
        feed(&mut det, &corpus);
        let (h, level) = det.combined_h_estimate();
        assert!(level.is_some());
        if let OneHeavyHitterOutcome::Author { h_estimate, .. } = det.decode() {
            assert_eq!(h_estimate, h);
        } else {
            panic!("expected detection");
        }
    }

    #[test]
    fn sample_size_scales() {
        let mut rng = StdRng::seed_from_u64(0);
        let loose = OneHeavyHitter::new(Epsilon::new(0.5).unwrap(), 0.5, &mut rng);
        let tight = OneHeavyHitter::new(Epsilon::new(0.05).unwrap(), 0.5, &mut rng);
        assert!(tight.sample_size() > loose.sample_size());
        let tighter_delta = OneHeavyHitter::new(Epsilon::new(0.5).unwrap(), 1e-6, &mut rng);
        assert!(tighter_delta.sample_size() > loose.sample_size());
    }

    #[test]
    fn space_bounded_by_levels_times_sample() {
        let corpus = planted_heavy_hitters(&[40], 20, 10, 5, 6);
        let mut det = detector(0.2, 9);
        feed(&mut det, &corpus);
        let levels = det.buckets.len();
        // Papers here are single-author: ≤ 3 words per retained sample.
        let bound = levels * (det.sample_size() * 3 + 2) + 2;
        assert!(det.space_words() <= bound, "{} > {bound}", det.space_words());
    }
}
