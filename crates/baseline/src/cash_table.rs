//! Exact cash-register baseline.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use hindex_common::{CashRegisterEstimator, Estimate, Mergeable, SpaceUsage};
use std::collections::HashMap;

/// Exact cash-register H-index via a full paper → count table.
///
/// Alongside the table it maintains the current exact H-index
/// *incrementally*: `h` only ever grows under cash-register updates,
/// and grows by at most one per update, so it suffices to track
/// `count_at_least_h_plus_1 = #{papers with count ≥ h+1}` and promote
/// when that reaches `h + 1`. Each update adjusts the tally in `O(1)`
/// amortized (promotion rescans a bucket histogram).
#[derive(Debug, Clone, Default)]
pub struct CashTable {
    counts: HashMap<u64, u64>,
    /// Histogram bucket: value → number of papers with exactly that
    /// count. Kept only for counts ≤ current h + 1 is not enough for
    /// promotions, so the full (sparse) histogram is maintained.
    histogram: HashMap<u64, u64>,
    h: u64,
    /// Papers with count ≥ h + 1.
    above: u64,
}

impl CashTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact citation count of a paper.
    #[must_use]
    pub fn count(&self, paper: u64) -> u64 {
        self.counts.get(&paper).copied().unwrap_or(0)
    }

    /// Number of distinct papers with at least one citation.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }
}

impl Estimate for CashTable {
    fn estimate(&self) -> u64 {
        self.h
    }
}

impl CashRegisterEstimator for CashTable {
    fn ingest(&mut self, index: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        let entry = self.counts.entry(index).or_insert(0);
        let old = *entry;
        *entry += delta;
        let new = *entry;
        if old > 0 {
            // `counts` and `histogram` are updated in lockstep, so the
            // old bucket must exist; a desync would only skew the
            // incremental h (estimate stays a lower bound), so degrade
            // rather than panic (lint L9) and let the invariant layer
            // catch it in debug runs.
            hindex_common::debug_invariant!(
                self.histogram.contains_key(&old),
                "histogram out of sync: no bucket for count {old}"
            );
            if let Some(bucket) = self.histogram.get_mut(&old) {
                *bucket -= 1;
                if *bucket == 0 {
                    self.histogram.remove(&old);
                }
            }
        }
        *self.histogram.entry(new).or_insert(0) += 1;
        // Crossing the h+1 bar?
        if old <= self.h && new > self.h {
            self.above += 1;
            if self.above > self.h {
                // h increases by exactly one; recompute `above` for the
                // new bar h+2 from the histogram tail.
                self.h += 1;
                self.above = self
                    .histogram
                    .iter()
                    .filter(|&(&v, _)| v > self.h)
                    .map(|(_, &c)| c)
                    .sum();
            }
        }
    }
}

impl CashTable {
    /// FNV digest over the logical state: the per-paper totals in
    /// sorted order (hash-map iteration order must not leak into the
    /// digest), then the derived histogram, `h`, and `above` tallies —
    /// so a lockstep desync changes the digest even while the totals
    /// agree. Only compiled under `debug_invariants`.
    #[cfg(feature = "debug_invariants")]
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut bytes =
            Vec::with_capacity((self.counts.len() + self.histogram.len()) * 16 + 16);
        let mut counts: Vec<(u64, u64)> =
            self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        counts.sort_unstable();
        let mut hist: Vec<(u64, u64)> =
            self.histogram.iter().map(|(&v, &n)| (v, n)).collect();
        hist.sort_unstable();
        for (a, b) in counts.into_iter().chain(hist) {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        bytes.extend_from_slice(&self.h.to_le_bytes());
        bytes.extend_from_slice(&self.above.to_le_bytes());
        hindex_common::snapshot::fnv1a(&bytes)
    }
}

/// Merging the exact baseline replays `other`'s per-paper totals as
/// cash-register updates: the table is deterministic and
/// order-insensitive, so the result is exactly the table of the
/// concatenated streams. No shared randomness is required.
impl Mergeable for CashTable {
    fn merge(&mut self, other: &Self) {
        for (&paper, &count) in &other.counts {
            self.ingest(paper, count);
        }
    }
}

/// Payload: the per-paper totals as `(paper, count)` pairs, sorted by
/// paper id so equal tables encode identically regardless of hash-map
/// iteration order. The histogram, the incremental `h`, and the
/// `above` tally are *derived* state: decode rebuilds them by
/// replaying each total as one cash-register update, which keeps the
/// four fields in lockstep by construction instead of trusting four
/// separately serialised copies to agree.
impl Snapshot for CashTable {
    const TAG: u8 = 20;

    fn write_payload(&self, w: &mut Writer<'_>) {
        let mut entries: Vec<(u64, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_unstable();
        w.put_usize(entries.len());
        for (paper, count) in entries {
            w.put_u64(paper);
            w.put_u64(count);
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let len = r.get_count(16)?;
        let mut table = Self::new();
        let mut prev: Option<u64> = None;
        for _ in 0..len {
            let paper = r.get_u64()?;
            let count = r.get_u64()?;
            if count == 0 {
                return Err(SnapshotError::Invalid("paper with zero citations stored"));
            }
            if prev.is_some_and(|p| p >= paper) {
                return Err(SnapshotError::Invalid("papers must be strictly increasing"));
            }
            prev = Some(paper);
            table.ingest(paper, count);
        }
        Ok(table)
    }
}

impl SpaceUsage for CashTable {
    fn space_words(&self) -> usize {
        2 * self.counts.len() + 2 * self.histogram.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;

    fn replay(updates: &[(u64, u64)]) -> (CashTable, u64) {
        let mut t = CashTable::new();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(i, d) in updates {
            t.ingest(i, d);
            *truth.entry(i).or_default() += d;
        }
        let values: Vec<u64> = truth.values().copied().collect();
        (t, h_index(&values))
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(CashTable::new().estimate(), 0);
    }

    #[test]
    fn unit_updates_single_paper() {
        let mut t = CashTable::new();
        for _ in 0..100 {
            t.ingest(7, 1);
        }
        assert_eq!(t.estimate(), 1);
        assert_eq!(t.count(7), 100);
        assert_eq!(t.distinct(), 1);
    }

    #[test]
    fn staircase_updates() {
        // Papers 0..10 receive i+1 citations each → h = 5... values are
        // 1..=10, h = 5.
        let updates: Vec<(u64, u64)> = (0..10u64).map(|i| (i, i + 1)).collect();
        let (t, truth) = replay(&updates);
        assert_eq!(truth, 5);
        assert_eq!(t.estimate(), 5);
    }

    #[test]
    fn incremental_promotion_matches_truth_prefixwise() {
        let mut t = CashTable::new();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // Interleaved unit updates over 20 papers.
        for step in 0..2000u64 {
            let paper = (step * 7) % 20;
            t.ingest(paper, 1);
            *truth.entry(paper).or_default() += 1;
            let values: Vec<u64> = truth.values().copied().collect();
            assert_eq!(t.estimate(), h_index(&values), "step {step}");
        }
    }

    #[test]
    fn zero_delta_ignored() {
        let mut t = CashTable::new();
        t.ingest(3, 0);
        assert_eq!(t.distinct(), 0);
        assert_eq!(t.estimate(), 0);
    }

    #[test]
    fn space_tracks_distinct_papers() {
        let mut t = CashTable::new();
        for i in 0..100u64 {
            t.ingest(i, 2);
        }
        assert!(t.space_words() >= 200);
    }

    #[test]
    fn merge_equals_concatenation() {
        let updates: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 23, 1 + k % 4)).collect();
        let (whole, truth) = replay(&updates);
        let mut a = CashTable::new();
        let mut b = CashTable::new();
        for (n, &(i, d)) in updates.iter().enumerate() {
            if n % 2 == 0 {
                a.ingest(i, d);
            } else {
                b.ingest(i, d);
            }
        }
        a.merge(&b);
        assert_eq!(a.estimate(), truth);
        assert_eq!(a.estimate(), whole.estimate());
        assert_eq!(a.distinct(), whole.distinct());
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_offline(
            updates in proptest::collection::vec((0u64..50, 1u64..20), 0..300),
        ) {
            let (t, truth) = replay(&updates);
            proptest::prop_assert_eq!(t.estimate(), truth);
        }

        #[test]
        fn prop_prefix_monotone(
            updates in proptest::collection::vec((0u64..30, 1u64..5), 1..200),
        ) {
            let mut t = CashTable::new();
            let mut prev = 0;
            for &(i, d) in &updates {
                t.ingest(i, d);
                let h = t.estimate();
                proptest::prop_assert!(h >= prev, "h decreased");
                prev = h;
            }
        }
    }
}
