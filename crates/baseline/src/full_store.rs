//! Store-everything aggregate baseline.

use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use hindex_common::{h_index, AggregateEstimator, Estimate, SpaceUsage};

/// Exact aggregate-model baseline that stores every value — the
/// strawman the paper's streaming algorithms are measured against.
///
/// `estimate` recomputes from scratch (`O(n)`), which is fine for its
/// role as a ground-truth oracle in tests and experiments.
#[derive(Debug, Clone, Default)]
pub struct FullStore {
    values: Vec<u64>,
}

impl FullStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored values in arrival order.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl Estimate for FullStore {
    fn estimate(&self) -> u64 {
        h_index(&self.values)
    }
}

impl AggregateEstimator for FullStore {
    fn ingest(&mut self, value: u64) {
        self.values.push(value);
    }
}

/// Payload: the stored values in arrival order. Nothing to validate —
/// every `Vec<u64>` is a reachable store.
impl Snapshot for FullStore {
    const TAG: u8 = 21;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_usize(self.values.len());
        for &v in &self.values {
            w.put_u64(v);
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let len = r.get_count(8)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.get_u64()?);
        }
        Ok(Self { values })
    }
}

impl SpaceUsage for FullStore {
    fn space_words(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_offline() {
        let mut fs = FullStore::new();
        let vals = [5u64, 6, 5, 6, 5, 5, 5, 5, 5, 5];
        for &v in &vals {
            fs.ingest(v);
        }
        assert_eq!(fs.estimate(), 5);
        assert_eq!(fs.space_words(), 10);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(FullStore::new().estimate(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_always_exact(values in proptest::collection::vec(0u64..500, 0..150)) {
            let mut fs = FullStore::new();
            fs.extend_from(values.iter().copied());
            proptest::prop_assert_eq!(fs.estimate(), h_index(&values));
            proptest::prop_assert_eq!(fs.space_words(), values.len());
        }
    }
}
