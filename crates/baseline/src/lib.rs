//! Exact streaming baselines.
//!
//! The paper's opening observation: "If all the items can be stored,
//! H-index of a user can be computed by sorting." These are those
//! store-things baselines, instrumented with word-accurate space
//! accounting so the experiments can show exactly what the sketches
//! save:
//!
//! * [`FullStore`] — stores every aggregate value; `n` words.
//! * [`HeapExact`] — the tightest exact online algorithm: a min-heap of
//!   the current H-support, `h + O(1)` words
//!   (re-exported from `hindex-common`; see
//!   [`hindex_common::IncrementalHIndex`]).
//! * [`CashTable`] — exact cash-register baseline: a full
//!   paper → citation-count table plus a value-bucket array answering
//!   H-index queries in `O(h)`; `Θ(distinct papers)` words.
//! * [`AuthorTable`] — exact per-author H-indices over a paper stream;
//!   `Θ(Σ_a h*(a))` words. The exact analogue of §4's heavy-hitter
//!   mining.
//! * [`TurnstileTable`] — exact H-index with retractions (negative
//!   updates), the baseline for the turnstile extension.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod author_table;
pub mod cash_table;
pub mod full_store;
pub mod turnstile_table;

pub use author_table::AuthorTable;
pub use cash_table::CashTable;
pub use full_store::FullStore;
pub use turnstile_table::TurnstileTable;

/// The heap-based exact online H-index (alias of
/// [`hindex_common::IncrementalHIndex`]).
pub type HeapExact = hindex_common::IncrementalHIndex;
