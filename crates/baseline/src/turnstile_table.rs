//! Exact turnstile baseline: citations with retractions.

use hindex_common::SpaceUsage;
use std::collections::{BTreeMap, HashMap};

/// Exact H-index under turnstile updates (`V[p] += δ`, δ possibly
/// negative), computed as `h*(max(V, 0))`.
///
/// Unlike [`crate::CashTable`], the H-index can *decrease* here, so no
/// monotone shortcut applies; the estimate walks the positive-count
/// histogram from the top (`O(distinct positive values)` per query).
#[derive(Debug, Clone, Default)]
pub struct TurnstileTable {
    counts: HashMap<u64, i64>,
    /// Histogram over positive counts only.
    histogram: BTreeMap<u64, u64>,
}

impl TurnstileTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `V[index] += delta`.
    pub fn ingest(&mut self, index: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.counts.entry(index).or_insert(0);
        let old = *entry;
        *entry += delta;
        let new = *entry;
        if *entry == 0 {
            self.counts.remove(&index);
        }
        if old > 0 {
            // Same lockstep argument as `CashTable::ingest`: degrade
            // instead of panicking (lint L3), with the invariant layer
            // asserting sync in debug runs.
            hindex_common::debug_invariant!(
                self.histogram.contains_key(&(old as u64)),
                "histogram out of sync: no bucket for count {old}"
            );
            if let Some(b) = self.histogram.get_mut(&(old as u64)) {
                *b -= 1;
                if *b == 0 {
                    self.histogram.remove(&(old as u64));
                }
            }
        }
        if new > 0 {
            *self.histogram.entry(new as u64).or_insert(0) += 1;
        }
    }

    /// The exact current count of a paper (may be negative).
    #[must_use]
    pub fn count(&self, paper: u64) -> i64 {
        self.counts.get(&paper).copied().unwrap_or(0)
    }

    /// Number of non-zero coordinates (the ℓ₀ norm).
    #[must_use]
    pub fn l0(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Exact H-index of the clamped vector `max(V, 0)`.
    #[must_use]
    pub fn h_index(&self) -> u64 {
        let mut at_least = 0u64;
        let mut best = 0u64;
        for (&value, &mult) in self.histogram.iter().rev() {
            at_least += mult;
            // h candidates in (prev_value, value]: the best feasible is
            // min(value, at_least).
            best = best.max(value.min(at_least));
        }
        best
    }
}

impl SpaceUsage for TurnstileTable {
    fn space_words(&self) -> usize {
        2 * self.counts.len() + 2 * self.histogram.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;

    fn oracle(counts: &HashMap<u64, i64>) -> u64 {
        let values: Vec<u64> = counts.values().map(|&v| v.max(0) as u64).collect();
        h_index(&values)
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(TurnstileTable::new().h_index(), 0);
    }

    #[test]
    fn insert_only_matches_offline() {
        let mut t = TurnstileTable::new();
        for (i, c) in [(0u64, 10i64), (1, 5), (2, 3), (3, 3), (4, 1)] {
            t.ingest(i, c);
        }
        assert_eq!(t.h_index(), 3);
    }

    #[test]
    fn retraction_decreases_h() {
        let mut t = TurnstileTable::new();
        for p in 0..10u64 {
            t.ingest(p, 10);
        }
        assert_eq!(t.h_index(), 10);
        for p in 0..6u64 {
            t.ingest(p, -10);
        }
        assert_eq!(t.h_index(), 4);
    }

    #[test]
    fn negative_counts_clamped() {
        let mut t = TurnstileTable::new();
        t.ingest(1, 5);
        t.ingest(1, -8); // net −3
        t.ingest(2, 2);
        assert_eq!(t.count(1), -3);
        assert_eq!(t.h_index(), 1); // only paper 2 counts
        assert_eq!(t.l0(), 2); // both are non-zero coordinates
    }

    #[test]
    fn exact_zero_coordinates_leave_table() {
        let mut t = TurnstileTable::new();
        t.ingest(7, 4);
        t.ingest(7, -4);
        assert_eq!(t.l0(), 0);
        assert_eq!(t.h_index(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_offline_oracle(
            updates in proptest::collection::vec((0u64..40, -20i64..20), 0..400),
        ) {
            let mut t = TurnstileTable::new();
            let mut truth: HashMap<u64, i64> = HashMap::new();
            for &(i, d) in &updates {
                t.ingest(i, d);
                let e = truth.entry(i).or_insert(0);
                *e += d;
                if *e == 0 {
                    truth.remove(&i);
                }
            }
            proptest::prop_assert_eq!(t.h_index(), oracle(&truth));
            proptest::prop_assert_eq!(t.l0(), truth.len() as u64);
        }

        #[test]
        fn prop_histogram_consistency(
            updates in proptest::collection::vec((0u64..20, -10i64..10), 0..200),
        ) {
            let mut t = TurnstileTable::new();
            for &(i, d) in &updates {
                t.ingest(i, d);
            }
            // Histogram multiplicities must sum to the number of
            // positive coordinates.
            let hist_total: u64 = t.histogram.values().sum();
            let positive = t.counts.values().filter(|&&v| v > 0).count() as u64;
            proptest::prop_assert_eq!(hist_total, positive);
        }
    }
}
