//! Exact per-author H-index tracking — the store-everything analogue of
//! §4's heavy-hitter mining.

use hindex_common::{IncrementalHIndex, SpaceUsage};
use hindex_stream::{AuthorId, Paper};
use std::collections::HashMap;

/// Exact per-author H-indices over a stream of paper tuples.
///
/// Keeps one [`IncrementalHIndex`] (the `O(h)`-word exact tracker) per
/// author, so total space is `Θ(Σ_a h*(a) + |A|)` words — the baseline
/// Algorithm 8's sublinear sketch is measured against in E9/E11.
#[derive(Debug, Clone, Default)]
pub struct AuthorTable {
    authors: HashMap<AuthorId, IncrementalHIndex>,
    total_citations: u64,
}

impl AuthorTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one paper tuple; the paper counts toward each author.
    pub fn ingest(&mut self, paper: &Paper) {
        self.total_citations += paper.citations;
        for &a in &paper.authors {
            self.authors.entry(a).or_default().insert(paper.citations);
        }
    }

    /// Exact H-index of an author (0 if unseen).
    #[must_use]
    pub fn h_index(&self, author: AuthorId) -> u64 {
        self.authors.get(&author).map_or(0, IncrementalHIndex::h_index)
    }

    /// Exact total impact `h*(S) = Σ_a h*(a)`.
    #[must_use]
    pub fn total_impact(&self) -> u64 {
        self.authors.values().map(IncrementalHIndex::h_index).sum()
    }

    /// Exact total responses.
    #[must_use]
    pub fn total_citations(&self) -> u64 {
        self.total_citations
    }

    /// Number of distinct authors seen.
    #[must_use]
    pub fn num_authors(&self) -> usize {
        self.authors.len()
    }

    /// The exact ε-heavy hitters, sorted by descending H-index.
    #[must_use]
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(AuthorId, u64)> {
        let bar = epsilon * self.total_impact() as f64;
        let mut hh: Vec<(AuthorId, u64)> = self
            .authors
            .iter()
            .map(|(&a, ih)| (a, ih.h_index()))
            .filter(|&(_, h)| h as f64 >= bar)
            .collect();
        hh.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hh
    }
}

impl SpaceUsage for AuthorTable {
    fn space_words(&self) -> usize {
        self.authors
            .values()
            .map(|ih| ih.space_words() + 1)
            .sum::<usize>()
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_stream::generator::planted_heavy_hitters;
    use hindex_stream::Corpus;

    fn feed(corpus: &Corpus) -> AuthorTable {
        let mut t = AuthorTable::new();
        for p in corpus.papers() {
            t.ingest(p);
        }
        t
    }

    #[test]
    fn matches_corpus_ground_truth() {
        let corpus = planted_heavy_hitters(&[25, 10], 20, 5, 3, 1);
        let truth = corpus.ground_truth();
        let table = feed(&corpus);
        for (&a, &h) in &truth.per_author {
            assert_eq!(table.h_index(a), h, "author {a}");
        }
        assert_eq!(table.total_impact(), truth.total_h_impact);
        assert_eq!(table.total_citations(), truth.total_citations);
        assert_eq!(table.num_authors(), truth.per_author.len());
    }

    #[test]
    fn heavy_hitters_agree_with_ground_truth() {
        let corpus = planted_heavy_hitters(&[40, 30, 5], 30, 4, 2, 2);
        let truth = corpus.ground_truth();
        let table = feed(&corpus);
        for e in [0.05, 0.1, 0.3] {
            assert_eq!(table.heavy_hitters(e), truth.heavy_hitters(e), "eps {e}");
        }
    }

    #[test]
    fn unseen_author_is_zero() {
        let table = AuthorTable::new();
        assert_eq!(table.h_index(AuthorId(99)), 0);
        assert_eq!(table.total_impact(), 0);
    }

    #[test]
    fn space_tracks_sum_of_h() {
        use hindex_stream::Paper;
        let mut t = AuthorTable::new();
        for i in 0..100u64 {
            t.ingest(&Paper::solo(i, i % 10, 1000));
        }
        // 10 authors with h = 10 each: ~10·(10+2) words.
        let w = t.space_words();
        assert!((100..=200).contains(&w), "words {w}");
    }
}
