//! Pairwise independent hashing, `h(x) = (a·x + b) mod p`.
//!
//! This is the family Algorithm 8 of the paper asks for ("independently
//! sample function from a set of pair-wise independent hash functions").
//! It is a thin specialization of [`crate::PolynomialHash`] with `a ≠ 0`
//! enforced, which additionally makes the function injective on the
//! field — handy for the fingerprint tests in sparse recovery.

use crate::field::{mersenne_add, mersenne_mul, mersenne_reduce, MERSENNE_P};
use crate::Hasher64;
use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use rand::Rng;

/// A pairwise independent hash function with a non-zero slope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

impl PairwiseHash {
    /// Draws a fresh function with `a` uniform in `[1, p)` and `b`
    /// uniform in `[0, p)`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: rng.random_range(1..MERSENNE_P),
            b: rng.random_range(0..MERSENNE_P),
        }
    }

    /// Builds a function from explicit parameters (for tests).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ a < p` and `b < p`.
    #[must_use]
    pub fn from_params(a: u64, b: u64) -> Self {
        assert!((1..MERSENNE_P).contains(&a), "slope must be in [1, p)");
        assert!(b < MERSENNE_P, "offset must be reduced");
        Self { a, b }
    }

    /// The slope `a`.
    #[must_use]
    pub fn slope(&self) -> u64 {
        self.a
    }

    /// The offset `b`.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.b
    }

    /// Hashes a whole slice of keys, appending one hash per key to
    /// `out` (cleared first). Bit-identical to per-key
    /// [`Hasher64::hash`]; four keys are processed per iteration with
    /// independent multiply/reduce chains so the pipeline stays full.
    pub fn hash_batch(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.resize(keys.len(), 0);
        self.hash_batch_into(keys, out);
    }

    /// In-place form of [`Self::hash_batch`]: writes `keys.len()`
    /// hashes into a caller-provided slice (e.g. one row segment of a
    /// flat rows×tile column buffer), no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn hash_batch_into(&self, keys: &[u64], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "key/output length mismatch");
        let (a, b) = (self.a, self.b);
        let mut chunks = keys.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (chunk, o) in (&mut chunks).zip(&mut outs) {
            o[0] = mersenne_add(mersenne_mul(a, mersenne_reduce(u128::from(chunk[0]))), b);
            o[1] = mersenne_add(mersenne_mul(a, mersenne_reduce(u128::from(chunk[1]))), b);
            o[2] = mersenne_add(mersenne_mul(a, mersenne_reduce(u128::from(chunk[2]))), b);
            o[3] = mersenne_add(mersenne_mul(a, mersenne_reduce(u128::from(chunk[3]))), b);
        }
        for (&k, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = self.hash(k);
        }
    }

    /// Hashes a slice of keys into `0..m`, appending one bucket per key
    /// to `out` (cleared first). Bit-identical to per-key
    /// [`Hasher64::hash_to_range`] — this is the row-routing kernel of
    /// the s-sparse recovery batch update.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn hash_to_range_batch(&self, keys: &[u64], m: u64, out: &mut Vec<u64>) {
        out.clear();
        out.resize(keys.len(), 0);
        self.hash_to_range_batch_into(keys, m, out);
    }

    /// In-place form of [`Self::hash_to_range_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the slice lengths differ.
    pub fn hash_to_range_batch_into(&self, keys: &[u64], m: u64, out: &mut [u64]) {
        assert!(m > 0, "range must be non-empty");
        self.hash_batch_into(keys, out);
        if m.is_power_of_two() {
            // Identical to `% m` without the per-key hardware divide.
            let mask = m - 1;
            for h in out.iter_mut() {
                *h &= mask;
            }
        } else {
            for h in out.iter_mut() {
                *h %= m;
            }
        }
    }
}

impl Hasher64 for PairwiseHash {
    fn domain(&self) -> u64 {
        MERSENNE_P
    }

    fn hash(&self, key: u64) -> u64 {
        let x = mersenne_reduce(u128::from(key));
        mersenne_add(mersenne_mul(self.a, x), self.b)
    }
}

/// Payload: slope `a` then offset `b`, both already-canonical field
/// elements. Decode re-validates the `from_params` invariants with
/// typed errors instead of asserts.
impl Snapshot for PairwiseHash {
    const TAG: u8 = 1;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_u64(self.a);
        w.put_u64(self.b);
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let a = r.get_u64()?;
        let b = r.get_u64()?;
        if !(1..MERSENNE_P).contains(&a) {
            return Err(SnapshotError::Invalid("pairwise slope outside [1, p)"));
        }
        if b >= MERSENNE_P {
            return Err(SnapshotError::Invalid("pairwise offset outside [0, p)"));
        }
        Ok(Self { a, b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn formula() {
        let h = PairwiseHash::from_params(3, 7);
        assert_eq!(h.hash(0), 7);
        assert_eq!(h.hash(1), 10);
        assert_eq!(h.hash(100), 307);
    }

    #[test]
    fn injective_on_field() {
        // a ≠ 0 makes x ↦ ax + b a bijection of 𝔽_p; spot-check a window.
        let h = PairwiseHash::new(&mut StdRng::seed_from_u64(5));
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(h.hash(x)), "collision at {x}");
        }
    }

    #[test]
    fn slope_never_zero() {
        for seed in 0..200u64 {
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            assert_ne!(h.slope(), 0);
        }
    }

    #[test]
    fn bucket_balance() {
        let h = PairwiseHash::new(&mut StdRng::seed_from_u64(42));
        let m = 8u64;
        let n = 80_000u64;
        let mut counts = vec![0u64; m as usize];
        for x in 0..n {
            counts[h.hash_to_range(x, m) as usize] += 1;
        }
        let expected = (n / m) as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < 0.1 * expected);
        }
    }

    #[test]
    #[should_panic(expected = "slope must be in [1, p)")]
    fn zero_slope_rejected() {
        let _ = PairwiseHash::from_params(0, 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_batch_matches_per_key(
            seed in proptest::num::u64::ANY,
            m in 1u64..1_000,
            keys in proptest::collection::vec(proptest::num::u64::ANY, 0..40),
        ) {
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            let mut hashes = Vec::new();
            h.hash_batch(&keys, &mut hashes);
            let expected: Vec<u64> = keys.iter().map(|&k| h.hash(k)).collect();
            proptest::prop_assert_eq!(&hashes, &expected);
            let mut buckets = Vec::new();
            h.hash_to_range_batch(&keys, m, &mut buckets);
            let expected: Vec<u64> = keys.iter().map(|&k| h.hash_to_range(k, m)).collect();
            proptest::prop_assert_eq!(buckets, expected);
        }

        #[test]
        fn prop_in_field(seed in proptest::num::u64::ANY, key in proptest::num::u64::ANY) {
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            proptest::prop_assert!(h.hash(key) < MERSENNE_P);
        }

        #[test]
        fn prop_distinct_keys_distinct_hashes(seed in proptest::num::u64::ANY, a in 0u64..1_000_000, b in 0u64..1_000_000) {
            // Injectivity on reduced inputs.
            proptest::prop_assume!(a != b);
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            proptest::prop_assert_ne!(h.hash(a), h.hash(b));
        }
    }
}
