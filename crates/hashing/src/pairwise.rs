//! Pairwise independent hashing, `h(x) = (a·x + b) mod p`.
//!
//! This is the family Algorithm 8 of the paper asks for ("independently
//! sample function from a set of pair-wise independent hash functions").
//! It is a thin specialization of [`crate::PolynomialHash`] with `a ≠ 0`
//! enforced, which additionally makes the function injective on the
//! field — handy for the fingerprint tests in sparse recovery.

use crate::field::{mersenne_add, mersenne_mul, mersenne_reduce, MERSENNE_P};
use crate::Hasher64;
use rand::Rng;

/// A pairwise independent hash function with a non-zero slope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

impl PairwiseHash {
    /// Draws a fresh function with `a` uniform in `[1, p)` and `b`
    /// uniform in `[0, p)`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: rng.random_range(1..MERSENNE_P),
            b: rng.random_range(0..MERSENNE_P),
        }
    }

    /// Builds a function from explicit parameters (for tests).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ a < p` and `b < p`.
    #[must_use]
    pub fn from_params(a: u64, b: u64) -> Self {
        assert!((1..MERSENNE_P).contains(&a), "slope must be in [1, p)");
        assert!(b < MERSENNE_P, "offset must be reduced");
        Self { a, b }
    }

    /// The slope `a`.
    #[must_use]
    pub fn slope(&self) -> u64 {
        self.a
    }

    /// The offset `b`.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.b
    }
}

impl Hasher64 for PairwiseHash {
    fn domain(&self) -> u64 {
        MERSENNE_P
    }

    fn hash(&self, key: u64) -> u64 {
        let x = mersenne_reduce(u128::from(key));
        mersenne_add(mersenne_mul(self.a, x), self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn formula() {
        let h = PairwiseHash::from_params(3, 7);
        assert_eq!(h.hash(0), 7);
        assert_eq!(h.hash(1), 10);
        assert_eq!(h.hash(100), 307);
    }

    #[test]
    fn injective_on_field() {
        // a ≠ 0 makes x ↦ ax + b a bijection of 𝔽_p; spot-check a window.
        let h = PairwiseHash::new(&mut StdRng::seed_from_u64(5));
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(h.hash(x)), "collision at {x}");
        }
    }

    #[test]
    fn slope_never_zero() {
        for seed in 0..200u64 {
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            assert_ne!(h.slope(), 0);
        }
    }

    #[test]
    fn bucket_balance() {
        let h = PairwiseHash::new(&mut StdRng::seed_from_u64(42));
        let m = 8u64;
        let n = 80_000u64;
        let mut counts = vec![0u64; m as usize];
        for x in 0..n {
            counts[h.hash_to_range(x, m) as usize] += 1;
        }
        let expected = (n / m) as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < 0.1 * expected);
        }
    }

    #[test]
    #[should_panic(expected = "slope must be in [1, p)")]
    fn zero_slope_rejected() {
        let _ = PairwiseHash::from_params(0, 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_in_field(seed in proptest::num::u64::ANY, key in proptest::num::u64::ANY) {
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            proptest::prop_assert!(h.hash(key) < MERSENNE_P);
        }

        #[test]
        fn prop_distinct_keys_distinct_hashes(seed in proptest::num::u64::ANY, a in 0u64..1_000_000, b in 0u64..1_000_000) {
            // Injectivity on reduced inputs.
            proptest::prop_assume!(a != b);
            let h = PairwiseHash::new(&mut StdRng::seed_from_u64(seed));
            proptest::prop_assert_ne!(h.hash(a), h.hash(b));
        }
    }
}
