//! Hash families with provable independence guarantees.
//!
//! The paper's randomized components need specific amounts of
//! independence, not "a good hash function":
//!
//! * Algorithm 8 hashes authors with a **pairwise independent** family
//!   ([`PairwiseHash`]) — its Markov/variance argument needs exactly
//!   2-wise independence;
//! * the ℓ₀-sampler's level assignment and the BJKST distinct-count
//!   estimator use **k-wise independent** polynomial hashing
//!   ([`PolynomialHash`]) over the Mersenne field 𝔽_(2⁶¹−1)
//!   ([`field`]);
//! * [`TabulationHash`] (3-independent, and far stronger in practice
//!   per Pătraşcu–Thorup) backs the KMV cross-check estimator where
//!   min-wise-style behaviour matters more than algebraic independence.
//!
//! All families are constructed from an explicit RNG so every run in the
//! workspace is reproducible from a seed.
//!
//! On top of the families sits the **hot-path kernel layer**: windowed
//! power ladders ([`PowerLadder`]) that turn per-update fixed-base
//! exponentiation into a handful of table lookups, and batched Horner
//! evaluation ([`PolynomialHash::hash_batch`],
//! [`PairwiseHash::hash_to_range_batch`]) that keeps the reduction
//! pipeline full across a slice of keys. Every kernel is bit-identical
//! to its scalar counterpart — they change cycle counts, never states.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod field;
pub mod kwise;
pub mod ladder;
pub mod pairwise;
pub mod tabulation;

pub use field::{
    from_i64, from_u64, is_canonical, mersenne_add, mersenne_mul, mersenne_pow, mersenne_reduce,
    MERSENNE_P,
};
pub use kwise::PolynomialHash;
pub use ladder::PowerLadder;
pub use pairwise::PairwiseHash;
pub use tabulation::TabulationHash;

/// A seeded hash function from `u64` keys to `[0, p)` with
/// family-specific independence guarantees.
pub trait Hasher64 {
    /// The size of the output domain (exclusive upper bound of
    /// [`Hasher64::hash`]).
    fn domain(&self) -> u64;

    /// Hashes a key.
    fn hash(&self, key: u64) -> u64;

    /// Hashes into `0..m` by modular reduction.
    ///
    /// The reduction adds a bias of at most `m / domain()`, negligible
    /// for `m ≪ 2⁶¹`; callers needing exactly-uniform buckets should
    /// keep `m` below 2³².
    fn hash_to_range(&self, key: u64, m: u64) -> u64 {
        assert!(m > 0, "range must be non-empty");
        if m.is_power_of_two() {
            // Same value as `% m`, without the hardware divide — the
            // sketches' column counts (2s) are usually powers of two.
            self.hash(key) & (m - 1)
        } else {
            self.hash(key) % m
        }
    }

    /// Hashes to the unit interval `[0, 1)`.
    fn hash_to_unit(&self, key: u64) -> f64 {
        self.hash(key) as f64 / self.domain() as f64
    }
}
