//! Arithmetic over the Mersenne field 𝔽_p with `p = 2⁶¹ − 1`.
//!
//! The Mersenne structure lets us reduce a 122-bit product with two
//! shifts and adds instead of a division, which keeps polynomial hashing
//! fast enough to sit on the per-update hot path of every sketch.

/// The Mersenne prime `p = 2⁶¹ − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u128` modulo `p = 2⁶¹ − 1`.
///
/// Uses the identity `2⁶¹ ≡ 1 (mod p)`: split the value into 61-bit
/// limbs and add them. Two rounds suffice for any 128-bit input.
#[inline]
#[must_use]
pub fn mersenne_reduce(x: u128) -> u64 {
    const P: u128 = MERSENNE_P as u128;
    // First round: fold the top 67 bits onto the bottom 61.
    let folded = (x & P) + (x >> 61);
    // Second round: the sum is at most ~2⁶⁸, fold once more.
    let folded = (folded & P) + (folded >> 61);
    let mut r = folded as u64;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Multiplies two residues modulo `p`.
#[inline]
#[must_use]
pub fn mersenne_mul(a: u64, b: u64) -> u64 {
    mersenne_reduce(u128::from(a) * u128::from(b))
}

/// Adds two residues modulo `p`.
#[inline]
#[must_use]
pub fn mersenne_add(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    let s = a + b; // no overflow: both < 2⁶¹
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// Raises `base` to `exp` modulo `p` by square-and-multiply.
#[must_use]
pub fn mersenne_pow(base: u64, mut exp: u64) -> u64 {
    let mut base = base % MERSENNE_P;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mersenne_mul(acc, base);
        }
        base = mersenne_mul(base, base);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow but obviously-correct reference reduction.
    fn reduce_ref(x: u128) -> u64 {
        (x % u128::from(MERSENNE_P)) as u64
    }

    #[test]
    fn p_is_the_mersenne_prime() {
        assert_eq!(MERSENNE_P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn reduce_small_values() {
        assert_eq!(mersenne_reduce(0), 0);
        assert_eq!(mersenne_reduce(1), 1);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P)), 0);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P) + 1), 1);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P) - 1), MERSENNE_P - 1);
    }

    #[test]
    fn reduce_extremes() {
        assert_eq!(mersenne_reduce(u128::MAX), reduce_ref(u128::MAX));
        let max_product = u128::from(MERSENNE_P - 1) * u128::from(MERSENNE_P - 1);
        assert_eq!(mersenne_reduce(max_product), reduce_ref(max_product));
    }

    #[test]
    fn mul_matches_reference() {
        let samples = [0u64, 1, 2, 12345, MERSENNE_P - 1, MERSENNE_P / 2, 1 << 60];
        for &a in &samples {
            for &b in &samples {
                let expected = reduce_ref(u128::from(a % MERSENNE_P) * u128::from(b % MERSENNE_P));
                assert_eq!(mersenne_mul(a % MERSENNE_P, b % MERSENNE_P), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_wraps_correctly() {
        assert_eq!(mersenne_add(MERSENNE_P - 1, 1), 0);
        assert_eq!(mersenne_add(MERSENNE_P - 1, 2), 1);
        assert_eq!(mersenne_add(5, 7), 12);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(mersenne_pow(2, 0), 1);
        assert_eq!(mersenne_pow(2, 10), 1024);
        // Fermat's little theorem: a^(p-1) ≡ 1 for a ≠ 0.
        for a in [2u64, 3, 65537, MERSENNE_P - 2] {
            assert_eq!(mersenne_pow(a, MERSENNE_P - 1), 1, "a={a}");
        }
        // 2^61 ≡ 1 since 2^61 = p + 1.
        assert_eq!(mersenne_pow(2, 61), 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_reduce_matches_reference(x in proptest::num::u128::ANY) {
            proptest::prop_assert_eq!(mersenne_reduce(x), reduce_ref(x));
        }

        #[test]
        fn prop_mul_commutes_and_matches(a in 0u64..MERSENNE_P, b in 0u64..MERSENNE_P) {
            let m = mersenne_mul(a, b);
            proptest::prop_assert_eq!(m, mersenne_mul(b, a));
            proptest::prop_assert_eq!(m, reduce_ref(u128::from(a) * u128::from(b)));
        }

        #[test]
        fn prop_pow_agrees_with_repeated_mul(a in 0u64..MERSENNE_P, e in 0u64..32) {
            let mut expected = 1u64;
            for _ in 0..e {
                expected = mersenne_mul(expected, a);
            }
            proptest::prop_assert_eq!(mersenne_pow(a, e), expected);
        }
    }
}
