//! Arithmetic over the Mersenne field 𝔽_p with `p = 2⁶¹ − 1`.
//!
//! The Mersenne structure lets us reduce a 122-bit product with two
//! shifts and adds instead of a division, which keeps polynomial hashing
//! fast enough to sit on the per-update hot path of every sketch.

/// The Mersenne prime `p = 2⁶¹ − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u128` modulo `p = 2⁶¹ − 1`.
///
/// Uses the identity `2⁶¹ ≡ 1 (mod p)`: split the value into 61-bit
/// limbs and add them. Two rounds suffice for any 128-bit input.
#[inline]
#[must_use]
pub fn mersenne_reduce(x: u128) -> u64 {
    const P: u128 = MERSENNE_P as u128;
    // First round: fold the top 67 bits onto the bottom 61.
    let folded = (x & P) + (x >> 61);
    // Second round: the sum is at most ~2⁶⁸, fold once more.
    let folded = (folded & P) + (folded >> 61);
    let mut r = folded as u64;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    #[cfg(feature = "debug_invariants")]
    {
        assert!(is_canonical(r), "mersenne_reduce produced non-canonical residue");
    }
    r
}

/// Multiplies two residues modulo `p`.
#[inline]
#[must_use]
pub fn mersenne_mul(a: u64, b: u64) -> u64 {
    mersenne_reduce(u128::from(a) * u128::from(b))
}

/// Adds two residues modulo `p`.
#[inline]
#[must_use]
pub fn mersenne_add(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    #[cfg(feature = "debug_invariants")]
    {
        assert!(
            is_canonical(a) && is_canonical(b),
            "mersenne_add requires canonical inputs: {a} + {b}"
        );
    }
    let s = a + b; // no overflow: both < 2⁶¹
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// Whether `x` is a canonical residue, i.e. `x < p`.
///
/// All field helpers produce canonical residues; `mersenne_add` (and the
/// `debug_invariants` feature more broadly) *requires* them. Sketch code
/// that stores field elements long-term should hold only canonical
/// values so that merges and fingerprint comparisons are bit-exact.
#[inline]
#[must_use]
pub const fn is_canonical(x: u64) -> bool {
    x < MERSENNE_P
}

/// Canonicalizes an arbitrary `u64` into a residue modulo `p`.
///
/// This is the *only* sanctioned way to bring raw machine words into the
/// field (lint L1 bans open-coded `% MERSENNE_P` outside this module):
/// keeping the entry points here means canonicality assertions guard
/// every conversion when `debug_invariants` is enabled.
#[inline]
#[must_use]
pub fn from_u64(x: u64) -> u64 {
    let r = if x >= MERSENNE_P { x % MERSENNE_P } else { x };
    #[cfg(feature = "debug_invariants")]
    {
        assert!(is_canonical(r), "from_u64 produced non-canonical residue");
    }
    r
}

/// Embeds a signed delta into the field: returns `delta mod p` as a
/// canonical residue, mapping negative deltas to their additive inverse.
///
/// Handles the full `i64` range including `i64::MIN` (whose magnitude is
/// not representable as a positive `i64`): `rem_euclid` in `i128` avoids
/// the overflow that `-delta` would hit.
#[inline]
#[must_use]
pub fn from_i64(delta: i64) -> u64 {
    let r = i128::from(delta).rem_euclid(i128::from(MERSENNE_P)) as u64;
    #[cfg(feature = "debug_invariants")]
    {
        assert!(is_canonical(r), "from_i64 produced non-canonical residue");
    }
    r
}

/// Raises `base` to `exp` modulo `p` by square-and-multiply.
#[must_use]
pub fn mersenne_pow(base: u64, mut exp: u64) -> u64 {
    let mut base = from_u64(base);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mersenne_mul(acc, base);
        }
        base = mersenne_mul(base, base);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow but obviously-correct reference reduction.
    fn reduce_ref(x: u128) -> u64 {
        (x % u128::from(MERSENNE_P)) as u64
    }

    #[test]
    fn p_is_the_mersenne_prime() {
        assert_eq!(MERSENNE_P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn reduce_small_values() {
        assert_eq!(mersenne_reduce(0), 0);
        assert_eq!(mersenne_reduce(1), 1);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P)), 0);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P) + 1), 1);
        assert_eq!(mersenne_reduce(u128::from(MERSENNE_P) - 1), MERSENNE_P - 1);
    }

    #[test]
    fn reduce_extremes() {
        assert_eq!(mersenne_reduce(u128::MAX), reduce_ref(u128::MAX));
        let max_product = u128::from(MERSENNE_P - 1) * u128::from(MERSENNE_P - 1);
        assert_eq!(mersenne_reduce(max_product), reduce_ref(max_product));
    }

    #[test]
    fn mul_matches_reference() {
        let samples = [0u64, 1, 2, 12345, MERSENNE_P - 1, MERSENNE_P / 2, 1 << 60];
        for &a in &samples {
            for &b in &samples {
                let expected = reduce_ref(u128::from(a % MERSENNE_P) * u128::from(b % MERSENNE_P));
                assert_eq!(mersenne_mul(a % MERSENNE_P, b % MERSENNE_P), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_wraps_correctly() {
        assert_eq!(mersenne_add(MERSENNE_P - 1, 1), 0);
        assert_eq!(mersenne_add(MERSENNE_P - 1, 2), 1);
        assert_eq!(mersenne_add(5, 7), 12);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(mersenne_pow(2, 0), 1);
        assert_eq!(mersenne_pow(2, 10), 1024);
        // Fermat's little theorem: a^(p-1) ≡ 1 for a ≠ 0.
        for a in [2u64, 3, 65537, MERSENNE_P - 2] {
            assert_eq!(mersenne_pow(a, MERSENNE_P - 1), 1, "a={a}");
        }
        // 2^61 ≡ 1 since 2^61 = p + 1.
        assert_eq!(mersenne_pow(2, 61), 1);
    }

    #[test]
    fn from_i64_handles_extremes() {
        assert_eq!(from_i64(0), 0);
        assert_eq!(from_i64(1), 1);
        assert_eq!(from_i64(-1), MERSENNE_P - 1);
        assert_eq!(from_i64(i64::MAX), reduce_ref(i64::MAX as u128));
        // i64::MIN = -2⁶³; -2⁶³ mod (2⁶¹-1) = p - (2⁶³ mod p) = p - 4.
        assert_eq!(from_i64(i64::MIN), MERSENNE_P - 4);
        // Embedding is a homomorphism: (a + (-a)) ↦ 0.
        for d in [3i64, -17, i64::MAX, i64::MIN + 1] {
            assert_eq!(mersenne_add(from_i64(d), from_i64(-d)), 0, "d={d}");
        }
    }

    #[test]
    fn from_u64_canonicalizes() {
        assert_eq!(from_u64(0), 0);
        assert_eq!(from_u64(MERSENNE_P), 0);
        assert_eq!(from_u64(MERSENNE_P - 1), MERSENNE_P - 1);
        assert_eq!(from_u64(u64::MAX), reduce_ref(u128::from(u64::MAX)));
        assert!(is_canonical(from_u64(u64::MAX)));
    }

    proptest::proptest! {
        #[test]
        fn prop_from_i64_is_canonical_and_consistent(d in proptest::num::i64::ANY) {
            let r = from_i64(d);
            proptest::prop_assert!(is_canonical(r));
            let expected = i128::from(d).rem_euclid(i128::from(MERSENNE_P)) as u64;
            proptest::prop_assert_eq!(r, expected);
            // Additive inverse round-trip (guarded against -i64::MIN overflow).
            if d != i64::MIN {
                proptest::prop_assert_eq!(mersenne_add(r, from_i64(-d)), 0);
            }
        }

        #[test]
        fn prop_from_u64_round_trips(x in proptest::num::u64::ANY) {
            let r = from_u64(x);
            proptest::prop_assert!(is_canonical(r));
            proptest::prop_assert_eq!(from_u64(r), r); // idempotent on residues
            proptest::prop_assert_eq!(u128::from(r), u128::from(x) % u128::from(MERSENNE_P));
        }

        #[test]
        fn prop_reduce_matches_reference(x in proptest::num::u128::ANY) {
            proptest::prop_assert_eq!(mersenne_reduce(x), reduce_ref(x));
        }

        #[test]
        fn prop_mul_commutes_and_matches(a in 0u64..MERSENNE_P, b in 0u64..MERSENNE_P) {
            let m = mersenne_mul(a, b);
            proptest::prop_assert_eq!(m, mersenne_mul(b, a));
            proptest::prop_assert_eq!(m, reduce_ref(u128::from(a) * u128::from(b)));
        }

        #[test]
        fn prop_pow_agrees_with_repeated_mul(a in 0u64..MERSENNE_P, e in 0u64..32) {
            let mut expected = 1u64;
            for _ in 0..e {
                expected = mersenne_mul(expected, a);
            }
            proptest::prop_assert_eq!(mersenne_pow(a, e), expected);
        }
    }
}
