//! Windowed power ladders: precomputed exponentiation for a fixed base.
//!
//! Every fingerprint update in the sketch layer needs `rⁱ mod p` for a
//! base `r` that is **fixed at construction time** and an index `i`
//! that varies per update. Square-and-multiply
//! ([`crate::mersenne_pow`]) recomputes the squaring chain of `r` from
//! scratch on every call — ~61 squarings plus ~30 conditional
//! multiplies for 61-bit exponents. A [`PowerLadder`] spends those
//! multiplies **once**, building tables of
//!
//! ```text
//! T[w][d] = r^(d · 2^(8w))    for windows w = 0..8, digits d = 0..256
//! ```
//!
//! after which any 64-bit exponent costs at most 8 table lookups and 7
//! field multiplies (one per non-zero base-256 digit): a ~10× reduction
//! in hot-path multiplies. The table is 8 × 256 words (16 KiB) —
//! derived entirely from `r`, so it is *scratch*, not sketch state: two
//! sketches with the same `r` are merge-compatible regardless of who
//! holds a ladder, and [`PowerLadder::pow`] returns **bit-identical**
//! results to [`crate::mersenne_pow`] (both produce the canonical
//! residue in `[0, p)`).

use crate::field::{from_u64, mersenne_mul, MERSENNE_P};
use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};

/// Bits per window digit.
const WINDOW_BITS: usize = 8;
/// Digits per window (2⁸).
const WINDOW_SIZE: usize = 1 << WINDOW_BITS;
/// Windows needed to cover a full 64-bit exponent.
const WINDOWS: usize = 64 / WINDOW_BITS;

/// Precomputed windowed exponentiation table for a fixed base over
/// 𝔽_(2⁶¹−1).
///
/// ```
/// use hindex_hashing::{mersenne_pow, PowerLadder};
///
/// let ladder = PowerLadder::new(123_456_789);
/// for exp in [0u64, 1, 61, 1 << 40, u64::MAX] {
///     assert_eq!(ladder.pow(exp), mersenne_pow(123_456_789, exp));
/// }
/// ```
#[derive(Clone)]
pub struct PowerLadder {
    base: u64,
    /// `table[w * 256 + d] = base^(d << (8w))`, flattened row-major.
    table: Box<[u64]>,
}

impl std::fmt::Debug for PowerLadder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The 2048-entry table is pure derived data; printing it would
        // drown every sketch's Debug output.
        f.debug_struct("PowerLadder")
            .field("base", &self.base)
            .field("windows", &WINDOWS)
            .finish()
    }
}

impl PowerLadder {
    /// Builds the ladder for `base` (reduced modulo `p` first).
    ///
    /// Costs `8 × 255` field multiplies once; every subsequent
    /// [`PowerLadder::pow`] costs at most 7.
    #[must_use]
    pub fn new(base: u64) -> Self {
        let base = from_u64(base);
        let mut table = vec![0u64; WINDOWS * WINDOW_SIZE].into_boxed_slice();
        let mut window_base = base; // base^(2^(8w)) for the current w
        for w in 0..WINDOWS {
            let row = &mut table[w * WINDOW_SIZE..(w + 1) * WINDOW_SIZE];
            row[0] = 1;
            for d in 1..WINDOW_SIZE {
                row[d] = mersenne_mul(row[d - 1], window_base);
            }
            // row[255] * window_base = window_base^256, the next row's base.
            window_base = mersenne_mul(row[WINDOW_SIZE - 1], window_base);
        }
        Self { base, table }
    }

    /// The (reduced) base this ladder exponentiates.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Computes `base^exp mod p`, bit-identical to
    /// [`crate::mersenne_pow`]`(base, exp)`.
    #[inline]
    #[must_use]
    pub fn pow(&self, exp: u64) -> u64 {
        let mut acc = self.table[(exp & 0xFF) as usize];
        let mut rest = exp >> WINDOW_BITS;
        let mut row = WINDOW_SIZE;
        while rest != 0 {
            let digit = (rest & 0xFF) as usize;
            if digit != 0 {
                acc = mersenne_mul(acc, self.table[row + digit]);
            }
            rest >>= WINDOW_BITS;
            row += WINDOW_SIZE;
        }
        #[cfg(feature = "debug_invariants")]
        {
            assert_eq!(
                acc,
                crate::field::mersenne_pow(self.base, exp),
                "ladder diverged from square-and-multiply: base={} exp={exp}",
                self.base
            );
        }
        acc
    }

    /// Whether another ladder exponentiates the same base (the tables
    /// are then identical by construction).
    #[must_use]
    pub fn same_base(&self, other: &Self) -> bool {
        self.base == other.base
    }

    /// Words of table storage this ladder holds — derived scratch,
    /// reported separately from the paper's random-words space bound
    /// (see `docs/ALGORITHMS.md`, "Space accounting for derived
    /// scratch").
    #[must_use]
    pub fn table_words(&self) -> usize {
        self.table.len() + 1 // table entries + the stored base
    }
}

/// Payload: the base alone. The 2048-entry window table is *derived
/// scratch* — recomputed deterministically from the base on decode —
/// so a ladder snapshot is 8 bytes, not 16 KiB, and the restored
/// ladder's table is bit-identical by construction.
impl Snapshot for PowerLadder {
    const TAG: u8 = 4;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_u64(self.base);
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let base = r.get_u64()?;
        if base >= MERSENNE_P {
            return Err(SnapshotError::Invalid("ladder base outside [0, p)"));
        }
        Ok(Self::new(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{mersenne_pow, MERSENNE_P};

    #[test]
    fn matches_mersenne_pow_on_edges() {
        for base in [1u64, 2, 3, 65_537, MERSENNE_P - 2, MERSENNE_P - 1] {
            let ladder = PowerLadder::new(base);
            for exp in [
                0u64,
                1,
                2,
                61,
                255,
                256,
                257,
                (1 << 16) - 1,
                1 << 32,
                MERSENNE_P - 1,
                u64::MAX,
            ] {
                assert_eq!(
                    ladder.pow(exp),
                    mersenne_pow(base, exp),
                    "base={base} exp={exp}"
                );
            }
        }
    }

    #[test]
    fn unreduced_base_is_reduced_first() {
        // mersenne_pow reduces its base; the ladder must agree.
        let ladder = PowerLadder::new(MERSENNE_P + 5);
        assert_eq!(ladder.base(), 5);
        assert_eq!(ladder.pow(10), mersenne_pow(5, 10));
    }

    #[test]
    fn fermat_little_theorem() {
        let ladder = PowerLadder::new(987_654_321);
        assert_eq!(ladder.pow(MERSENNE_P - 1), 1);
    }

    #[test]
    fn table_words_counts_full_table() {
        let ladder = PowerLadder::new(7);
        assert_eq!(ladder.table_words(), 8 * 256 + 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_pow_matches_square_and_multiply(
            base in 0u64..MERSENNE_P,
            exp in proptest::num::u64::ANY,
        ) {
            let ladder = PowerLadder::new(base);
            proptest::prop_assert_eq!(ladder.pow(exp), mersenne_pow(base, exp));
        }

        #[test]
        fn prop_pow_is_homomorphic(
            base in 1u64..MERSENNE_P,
            a in 0u64..(1 << 60),
            b in 0u64..(1 << 60),
        ) {
            // r^a · r^b = r^(a+b): the ladder respects the group law.
            let ladder = PowerLadder::new(base);
            proptest::prop_assert_eq!(
                mersenne_mul(ladder.pow(a), ladder.pow(b)),
                ladder.pow(a + b)
            );
        }
    }
}
