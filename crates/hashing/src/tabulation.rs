//! Simple tabulation hashing.
//!
//! Splits a 64-bit key into 8 bytes and XORs together one random 64-bit
//! table entry per byte. Formally 3-independent, but Pătraşcu–Thorup
//! showed it behaves like a fully random function for the load-balancing
//! and min-wise style applications we use it for (the KMV distinct-count
//! cross-check). 2 KiB of tables per function.

use crate::Hasher64;
use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use rand::Rng;

const BYTES: usize = 8;
const TABLE: usize = 256;

/// A simple tabulation hash `u64 → u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE]; BYTES]>,
}

impl TabulationHash {
    /// Draws a fresh function: 8 × 256 uniform 64-bit entries.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        for table in tables.iter_mut() {
            for cell in table.iter_mut() {
                *cell = rng.random();
            }
        }
        Self { tables }
    }
}

impl Hasher64 for TabulationHash {
    fn domain(&self) -> u64 {
        u64::MAX
    }

    #[inline]
    fn hash(&self, key: u64) -> u64 {
        let mut out = 0u64;
        let bytes = key.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            out ^= self.tables[i][b as usize];
        }
        out
    }

    fn hash_to_unit(&self, key: u64) -> f64 {
        // u64::MAX as f64 rounds up to 2⁶⁴, which conveniently keeps the
        // result strictly below 1.0.
        self.hash(key) as f64 / (u64::MAX as f64 + 1.0)
    }
}

/// Payload: the 8 × 256 table entries row-major — a fixed 2048-word
/// block, every bit pattern valid (the tables are uniform 64-bit words,
/// so there is nothing semantic to re-validate beyond length).
impl Snapshot for TabulationHash {
    const TAG: u8 = 3;

    fn write_payload(&self, w: &mut Writer<'_>) {
        for table in self.tables.iter() {
            for &cell in table.iter() {
                w.put_u64(cell);
            }
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        for table in tables.iter_mut() {
            for cell in table.iter_mut() {
                *cell = r.get_u64()?;
            }
        }
        Ok(Self { tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_instance() {
        let h = TabulationHash::new(&mut StdRng::seed_from_u64(1));
        assert_eq!(h.hash(12345), h.hash(12345));
    }

    #[test]
    fn byte_sensitivity() {
        // Changing any single byte of the key must change the hash
        // (XOR of a different table entry) except with tiny probability.
        let h = TabulationHash::new(&mut StdRng::seed_from_u64(2));
        let key = 0x0123_4567_89ab_cdefu64;
        for byte in 0..8 {
            let flipped = key ^ (0xffu64 << (8 * byte));
            assert_ne!(h.hash(key), h.hash(flipped), "byte {byte}");
        }
    }

    #[test]
    fn unit_interval() {
        let h = TabulationHash::new(&mut StdRng::seed_from_u64(3));
        for x in 0..10_000u64 {
            let u = h.hash_to_unit(x * 7919);
            assert!((0.0..1.0).contains(&u), "u={u}");
        }
    }

    #[test]
    fn avalanche_smoke() {
        // Average Hamming distance between h(x) and h(x+1) should be
        // near 32 bits for a decent 64-bit hash.
        let h = TabulationHash::new(&mut StdRng::seed_from_u64(4));
        let mut total = 0u32;
        let n = 2_000u64;
        for x in 0..n {
            total += (h.hash(x) ^ h.hash(x + 1)).count_ones();
        }
        let avg = f64::from(total) / n as f64;
        assert!((24.0..40.0).contains(&avg), "avg flip {avg}");
    }

    #[test]
    fn min_statistic_unbiased() {
        // E[min of k uniform(0,1)] = 1/(k+1); used by KMV. Sanity check
        // the tabulation-induced minimum over many trials.
        let mut acc = 0.0;
        let trials = 300u32;
        let k = 50u64;
        for seed in 0..trials {
            let h = TabulationHash::new(&mut StdRng::seed_from_u64(u64::from(seed)));
            let min = (0..k).map(|x| h.hash_to_unit(x)).fold(1.0f64, f64::min);
            acc += min;
        }
        let avg = acc / f64::from(trials);
        let expected = 1.0 / (k as f64 + 1.0);
        assert!(
            (avg - expected).abs() < expected,
            "avg min {avg} vs expected {expected}"
        );
    }
}
