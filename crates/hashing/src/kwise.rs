//! k-wise independent polynomial hashing.
//!
//! A degree-`(k−1)` polynomial with uniformly random coefficients over a
//! prime field is a k-wise independent hash family (Wegman–Carter).
//! [`PolynomialHash`] evaluates such a polynomial over
//! 𝔽_(2⁶¹−1) via Horner's rule: `O(k)` multiplies per key.

use crate::field::{mersenne_add, mersenne_mul, mersenne_reduce, MERSENNE_P};
use crate::Hasher64;
use hindex_common::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use rand::Rng;

/// A k-wise independent hash function `h: u64 → [0, p)`,
/// `h(x) = Σ cᵢ xⁱ mod p` with random `cᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialHash {
    /// `coeffs[i]` multiplies `x^i`; `coeffs.len()` is the independence k.
    coeffs: Vec<u64>,
}

impl PolynomialHash {
    /// Draws a fresh function from the k-wise independent family.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        assert!(k >= 1, "independence must be at least 1");
        let coeffs = (0..k).map(|_| rng.random_range(0..MERSENNE_P)).collect();
        Self { coeffs }
    }

    /// The independence level k of this function.
    #[must_use]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Builds a function from explicit coefficients (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or any coefficient is `≥ p`.
    #[must_use]
    pub fn from_coefficients(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        assert!(coeffs.iter().all(|&c| c < MERSENNE_P), "coefficients must be reduced");
        Self { coeffs }
    }

    /// Evaluates the polynomial over a whole slice of keys, appending
    /// one hash per key to `out` (cleared first).
    ///
    /// Bit-identical to calling [`Hasher64::hash`] per key. The win is
    /// throughput: keys are processed four at a time with independent
    /// Horner accumulators, so the `k` sequential 64×64→128 multiplies
    /// per key overlap across lanes instead of serializing on one
    /// reduction chain. This is the hash kernel behind the estimators'
    /// `ingest_batch` fast paths (and hence the sharded engine's
    /// per-shard batch loop).
    pub fn hash_batch(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        let mut chunks = keys.chunks_exact(4);
        for chunk in &mut chunks {
            let x0 = mersenne_reduce(u128::from(chunk[0]));
            let x1 = mersenne_reduce(u128::from(chunk[1]));
            let x2 = mersenne_reduce(u128::from(chunk[2]));
            let x3 = mersenne_reduce(u128::from(chunk[3]));
            let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
            for &c in self.coeffs.iter().rev() {
                a0 = mersenne_add(mersenne_mul(a0, x0), c);
                a1 = mersenne_add(mersenne_mul(a1, x1), c);
                a2 = mersenne_add(mersenne_mul(a2, x2), c);
                a3 = mersenne_add(mersenne_mul(a3, x3), c);
            }
            out.extend_from_slice(&[a0, a1, a2, a3]);
        }
        for &k in chunks.remainder() {
            out.push(self.hash(k));
        }
    }
}

/// Payload: coefficient count, then the reduced coefficients `c₀ … c_{k−1}`.
/// Decode re-validates the `from_coefficients` invariants (non-empty,
/// every coefficient canonical) with typed errors.
impl Snapshot for PolynomialHash {
    const TAG: u8 = 2;

    fn write_payload(&self, w: &mut Writer<'_>) {
        w.put_usize(self.coeffs.len());
        for &c in &self.coeffs {
            w.put_u64(c);
        }
    }

    fn read_payload(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let k = r.get_count(8)?;
        if k == 0 {
            return Err(SnapshotError::Invalid("polynomial hash needs at least one coefficient"));
        }
        let mut coeffs = Vec::with_capacity(k);
        for _ in 0..k {
            let c = r.get_u64()?;
            if c >= MERSENNE_P {
                return Err(SnapshotError::Invalid("polynomial coefficient outside [0, p)"));
            }
            coeffs.push(c);
        }
        Ok(Self { coeffs })
    }
}

impl Hasher64 for PolynomialHash {
    fn domain(&self) -> u64 {
        MERSENNE_P
    }

    fn hash(&self, key: u64) -> u64 {
        let x = mersenne_reduce(u128::from(key));
        // Horner: (((c_{k-1}·x + c_{k-2})·x + …)·x + c_0)
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = mersenne_add(mersenne_mul(acc, x), c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_polynomial_is_constant() {
        let h = PolynomialHash::from_coefficients(vec![42]);
        for x in [0u64, 1, 99, u64::MAX] {
            assert_eq!(h.hash(x), 42);
        }
    }

    #[test]
    fn linear_polynomial_matches_formula() {
        // h(x) = 3 + 5x mod p
        let h = PolynomialHash::from_coefficients(vec![3, 5]);
        assert_eq!(h.hash(0), 3);
        assert_eq!(h.hash(1), 8);
        assert_eq!(h.hash(10), 53);
        let big = MERSENNE_P - 1;
        assert_eq!(h.hash(big), (3 + 5 * (u128::from(big)) % u128::from(MERSENNE_P)) as u64 % MERSENNE_P);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let h1 = PolynomialHash::new(4, &mut rng1);
        let h2 = PolynomialHash::new(4, &mut rng2);
        for x in 0..100u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h1 = PolynomialHash::new(2, &mut StdRng::seed_from_u64(1));
        let h2 = PolynomialHash::new(2, &mut StdRng::seed_from_u64(2));
        let same = (0..100u64).filter(|&x| h1.hash(x) == h2.hash(x)).count();
        assert!(same < 5, "two random functions should rarely collide pointwise");
    }

    #[test]
    fn range_hashing_respects_bounds() {
        let h = PolynomialHash::new(3, &mut StdRng::seed_from_u64(3));
        for x in 0..1000u64 {
            assert!(h.hash(x) < MERSENNE_P);
            assert!(h.hash_to_range(x, 17) < 17);
            let u = h.hash_to_unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        // Statistical smoke test: 2-wise independence gives near-uniform
        // marginals; check no bucket is wildly off.
        let h = PolynomialHash::new(2, &mut StdRng::seed_from_u64(11));
        let m = 10u64;
        let n = 100_000u64;
        let mut counts = vec![0u64; m as usize];
        for x in 0..n {
            counts[h.hash_to_range(x, m) as usize] += 1;
        }
        let expected = n / m;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected * 9 / 10 && c < expected * 11 / 10,
                "bucket {b} has {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_near_one_over_m() {
        // Collision probability of a pairwise family is ≤ 1/m; estimate
        // over random pairs.
        let h = PolynomialHash::new(2, &mut StdRng::seed_from_u64(13));
        let m = 64u64;
        let mut collisions = 0u64;
        let pairs = 20_000u64;
        for i in 0..pairs {
            let a = i * 2 + 1;
            let b = i * 2 + 2;
            if h.hash_to_range(a, m) == h.hash_to_range(b, m) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / pairs as f64;
        assert!(rate < 2.0 / m as f64, "collision rate {rate} too high for m={m}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_independence_panics() {
        let _ = PolynomialHash::new(0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn hash_batch_handles_empty_and_remainders() {
        let h = PolynomialHash::new(3, &mut StdRng::seed_from_u64(17));
        let mut out = Vec::new();
        for len in 0..9 {
            let keys: Vec<u64> = (0..len as u64).map(|k| k * 31 + 7).collect();
            h.hash_batch(&keys, &mut out);
            let expected: Vec<u64> = keys.iter().map(|&k| h.hash(k)).collect();
            assert_eq!(out, expected, "len {len}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_output_in_field(seed in proptest::num::u64::ANY, key in proptest::num::u64::ANY) {
            let h = PolynomialHash::new(5, &mut StdRng::seed_from_u64(seed));
            proptest::prop_assert!(h.hash(key) < MERSENNE_P);
        }

        #[test]
        fn prop_hash_batch_matches_per_key(
            seed in proptest::num::u64::ANY,
            k in 1usize..16,
            keys in proptest::collection::vec(proptest::num::u64::ANY, 0..64),
        ) {
            let h = PolynomialHash::new(k, &mut StdRng::seed_from_u64(seed));
            let mut out = Vec::new();
            h.hash_batch(&keys, &mut out);
            let expected: Vec<u64> = keys.iter().map(|&key| h.hash(key)).collect();
            proptest::prop_assert_eq!(out, expected);
        }
    }
}
