//! A corpus of papers with exact ground truth.
//!
//! Experiments compare streaming estimates against the ground truth a
//! [`Corpus`] computes offline: per-author H-indices, the total
//! H-impact `h*(S) = Σ_a h*(a)` that §4 measures heaviness against, and
//! the scales (`n`, distinct cited papers, total citations) that the
//! additive guarantees are stated in.

use crate::model::{AuthorId, Paper};
use hindex_common::h_index;
use std::collections::HashMap;

/// An in-memory corpus of papers.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    papers: Vec<Paper>,
}

/// Exact offline statistics of a corpus.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Exact H-index per author.
    pub per_author: HashMap<AuthorId, u64>,
    /// `h*(S) = Σ_a h*(a)`, the denominator of §4's heaviness.
    pub total_h_impact: u64,
    /// H-index of the whole corpus viewed as one user's publication
    /// list (what the §3 algorithms estimate on single-user streams).
    pub combined_h: u64,
    /// Number of papers.
    pub n_papers: u64,
    /// Number of papers with at least one citation (the ℓ₀ scale of
    /// Algorithm 6's additive guarantee).
    pub distinct_cited: u64,
    /// Total citations over all papers.
    pub total_citations: u64,
}

impl Corpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a corpus from a list of papers.
    #[must_use]
    pub fn from_papers(papers: Vec<Paper>) -> Self {
        Self { papers }
    }

    /// Creates a single-author corpus straight from citation counts
    /// (the §3 setting).
    #[must_use]
    pub fn solo_from_counts(counts: &[u64]) -> Self {
        Self {
            papers: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| Paper::solo(i as u64, 0, c))
                .collect(),
        }
    }

    /// Adds one paper.
    pub fn push(&mut self, paper: Paper) {
        self.papers.push(paper);
    }

    /// The papers, in insertion order.
    #[must_use]
    pub fn papers(&self) -> &[Paper] {
        &self.papers
    }

    /// Number of papers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.papers.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.papers.is_empty()
    }

    /// The citation counts in insertion order — the aggregate stream of
    /// the corpus.
    #[must_use]
    pub fn citation_counts(&self) -> Vec<u64> {
        self.papers.iter().map(|p| p.citations).collect()
    }

    /// Computes all exact statistics in one pass plus one
    /// H-index computation per author.
    #[must_use]
    pub fn ground_truth(&self) -> GroundTruth {
        let mut by_author: HashMap<AuthorId, Vec<u64>> = HashMap::new();
        let mut distinct_cited = 0u64;
        let mut total_citations = 0u64;
        for p in &self.papers {
            if p.citations > 0 {
                distinct_cited += 1;
            }
            total_citations += p.citations;
            for &a in &p.authors {
                by_author.entry(a).or_default().push(p.citations);
            }
        }
        let per_author: HashMap<AuthorId, u64> = by_author
            .into_iter()
            .map(|(a, counts)| (a, h_index(&counts)))
            .collect();
        let total_h_impact = per_author.values().sum();
        let combined_h = h_index(&self.citation_counts());
        GroundTruth {
            per_author,
            total_h_impact,
            combined_h,
            n_papers: self.papers.len() as u64,
            distinct_cited,
            total_citations,
        }
    }
}

impl GroundTruth {
    /// The authors whose H-index is at least `epsilon · total_h_impact`
    /// — the ground-truth heavy hitters of §4, sorted by descending
    /// H-index.
    #[must_use]
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(AuthorId, u64)> {
        let bar = epsilon * self.total_h_impact as f64;
        let mut hh: Vec<(AuthorId, u64)> = self
            .per_author
            .iter()
            .filter(|&(_, &h)| h as f64 >= bar)
            .map(|(&a, &h)| (a, h))
            .collect();
        hh.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PaperId;

    fn sample_corpus() -> Corpus {
        // Author 1: counts [10, 5, 3] → h = 3.
        // Author 2: counts [5, 2] → h = 2.
        Corpus::from_papers(vec![
            Paper::solo(0, 1, 10),
            Paper::solo(1, 1, 5),
            Paper::solo(2, 1, 3),
            Paper::with_authors(3, &[2], 5),
            Paper::with_authors(4, &[2], 2),
        ])
    }

    #[test]
    fn ground_truth_per_author() {
        let gt = sample_corpus().ground_truth();
        assert_eq!(gt.per_author[&AuthorId(1)], 3);
        assert_eq!(gt.per_author[&AuthorId(2)], 2);
        assert_eq!(gt.total_h_impact, 5);
    }

    #[test]
    fn multi_author_papers_count_for_everyone() {
        let c = Corpus::from_papers(vec![
            Paper::with_authors(0, &[1, 2], 4),
            Paper::with_authors(1, &[1, 2], 4),
            Paper::with_authors(2, &[1], 4),
        ]);
        let gt = c.ground_truth();
        assert_eq!(gt.per_author[&AuthorId(1)], 3);
        assert_eq!(gt.per_author[&AuthorId(2)], 2);
    }

    #[test]
    fn combined_and_scales() {
        let gt = sample_corpus().ground_truth();
        assert_eq!(gt.combined_h, h_index(&[10, 5, 3, 5, 2]));
        assert_eq!(gt.n_papers, 5);
        assert_eq!(gt.distinct_cited, 5);
        assert_eq!(gt.total_citations, 25);
    }

    #[test]
    fn distinct_cited_skips_zero() {
        let c = Corpus::from_papers(vec![Paper::solo(0, 1, 0), Paper::solo(1, 1, 2)]);
        assert_eq!(c.ground_truth().distinct_cited, 1);
    }

    #[test]
    fn heavy_hitters_threshold() {
        let gt = sample_corpus().ground_truth(); // total impact 5
        let hh = gt.heavy_hitters(0.5); // bar = 2.5 → only author 1 (h=3)
        assert_eq!(hh, vec![(AuthorId(1), 3)]);
        let all = gt.heavy_hitters(0.1); // bar = 0.5 → both
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (AuthorId(1), 3)); // sorted descending
    }

    #[test]
    fn solo_from_counts_roundtrip() {
        let c = Corpus::solo_from_counts(&[4, 0, 7]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.papers()[2].id, PaperId(2));
        assert_eq!(c.citation_counts(), vec![4, 0, 7]);
        assert_eq!(c.ground_truth().per_author[&AuthorId(0)], 2);
    }

    #[test]
    fn empty_corpus() {
        let gt = Corpus::new().ground_truth();
        assert_eq!(gt.combined_h, 0);
        assert_eq!(gt.total_h_impact, 0);
        assert!(gt.heavy_hitters(0.1).is_empty());
    }
}
