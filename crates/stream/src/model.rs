//! The author / paper / citation data model of §2.2.

/// Identifier of an author (`a ∈ A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AuthorId(pub u64);

/// Identifier of a paper (`p ∈ P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PaperId(pub u64);

impl std::fmt::Display for AuthorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl std::fmt::Display for PaperId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A paper tuple `(p, a₁, …, a_y, c_p)`: id, authors and aggregate
/// citation count.
///
/// The paper assumes a bound `x` on the number of authors per paper
/// (`|A_p| ≤ x`); generators enforce their configured bound, and the
/// heavy-hitter algorithms handle any `y ≥ 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Paper {
    /// Paper id.
    pub id: PaperId,
    /// Authors (non-empty; at most the corpus's author bound).
    pub authors: Vec<AuthorId>,
    /// Aggregate citation count `c_p`.
    pub citations: u64,
}

impl Paper {
    /// Builds a single-author paper — the simplification §2.3 uses for
    /// the per-user algorithms of §3.
    #[must_use]
    pub fn solo(id: u64, author: u64, citations: u64) -> Self {
        Self {
            id: PaperId(id),
            authors: vec![AuthorId(author)],
            citations,
        }
    }

    /// Builds a multi-author paper.
    ///
    /// # Panics
    ///
    /// Panics if `authors` is empty (the model requires `y ≥ 1`).
    #[must_use]
    pub fn with_authors(id: u64, authors: &[u64], citations: u64) -> Self {
        assert!(!authors.is_empty(), "a paper needs at least one author");
        Self {
            id: PaperId(id),
            authors: authors.iter().copied().map(AuthorId).collect(),
            citations,
        }
    }

    /// Whether `author` is among the paper's authors.
    #[must_use]
    pub fn has_author(&self, author: AuthorId) -> bool {
        self.authors.contains(&author)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_constructor() {
        let p = Paper::solo(3, 7, 12);
        assert_eq!(p.id, PaperId(3));
        assert_eq!(p.authors, vec![AuthorId(7)]);
        assert_eq!(p.citations, 12);
        assert!(p.has_author(AuthorId(7)));
        assert!(!p.has_author(AuthorId(8)));
    }

    #[test]
    fn multi_author_constructor() {
        let p = Paper::with_authors(1, &[2, 3, 5], 9);
        assert_eq!(p.authors.len(), 3);
        assert!(p.has_author(AuthorId(5)));
    }

    #[test]
    #[should_panic(expected = "at least one author")]
    fn empty_authors_panics() {
        let _ = Paper::with_authors(1, &[], 9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AuthorId(4).to_string(), "a4");
        assert_eq!(PaperId(9).to_string(), "p9");
    }
}
