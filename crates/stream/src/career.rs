//! Career-model workload: temporal citation streams with preferential
//! attachment.
//!
//! The plain generators in [`crate::generator`] draw each paper's final
//! citation count i.i.d. from a chosen law. Real feedback does not
//! arrive that way: papers accumulate citations *over time*, rich get
//! richer (preferential attachment), and authors publish across a
//! career. This module simulates that process and emits the resulting
//! **temporally ordered cash-register stream**, the closest synthetic
//! stand-in for a production citation/retweet firehose:
//!
//! * time advances in rounds; each round some authors publish new
//!   papers and a batch of citations lands;
//! * each citation picks its target by preferential attachment with
//!   probability `attach_bias`, uniformly otherwise — the classic
//!   mixture that produces the power-law counts the i.i.d. generators
//!   postulate;
//! * the stream of [`CashUpdate`]s is exactly what the simulation
//!   produced, in order — no post-hoc shuffling needed.

use crate::cash::CashUpdate;
use crate::corpus::Corpus;
use crate::model::{AuthorId, Paper, PaperId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the career simulation.
#[derive(Debug, Clone, Copy)]
pub struct CareerModel {
    /// Number of authors publishing.
    pub n_authors: u64,
    /// Simulation rounds (e.g. months).
    pub rounds: u32,
    /// Probability an author publishes one paper in a round.
    pub publish_prob: f64,
    /// Citations landing per round (across the whole corpus).
    pub citations_per_round: u32,
    /// Probability a citation targets by preferential attachment (the
    /// rest pick a uniformly random existing paper).
    pub attach_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CareerModel {
    fn default() -> Self {
        Self {
            n_authors: 50,
            rounds: 120,
            publish_prob: 0.3,
            citations_per_round: 200,
            attach_bias: 0.7,
            seed: 0,
        }
    }
}

/// The simulation output: the final corpus and the temporal update
/// stream that produced it.
#[derive(Debug, Clone)]
pub struct CareerTrace {
    /// Final aggregated corpus (papers with their total citations).
    pub corpus: Corpus,
    /// The cash-register stream, in simulation order.
    pub updates: Vec<CashUpdate>,
}

impl CareerModel {
    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or an empty author set.
    #[must_use]
    pub fn simulate(&self) -> CareerTrace {
        assert!(self.n_authors >= 1, "need at least one author");
        assert!(
            (0.0..=1.0).contains(&self.publish_prob),
            "publish_prob in [0,1]"
        );
        assert!((0.0..=1.0).contains(&self.attach_bias), "attach_bias in [0,1]");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // papers[i] = (author, count)
        let mut papers: Vec<(u64, u64)> = Vec::new();
        let mut updates: Vec<CashUpdate> = Vec::new();
        let mut total_citations: u64 = 0;
        for _round in 0..self.rounds {
            // Publications.
            for author in 0..self.n_authors {
                if rng.random::<f64>() < self.publish_prob {
                    papers.push((author, 0));
                }
            }
            if papers.is_empty() {
                continue;
            }
            // Citations.
            for _ in 0..self.citations_per_round {
                let target = if total_citations > 0 && rng.random::<f64>() < self.attach_bias {
                    // Preferential attachment: pick a *citation* uniformly
                    // and cite its paper (probability ∝ current count).
                    // Implemented by inverse sampling over the counts.
                    let mut pick = rng.random_range(0..total_citations);
                    let mut idx = 0usize;
                    for (i, &(_, c)) in papers.iter().enumerate() {
                        if pick < c {
                            idx = i;
                            break;
                        }
                        pick -= c;
                    }
                    idx
                } else {
                    rng.random_range(0..papers.len() as u64) as usize
                };
                papers[target].1 += 1;
                total_citations += 1;
                updates.push(CashUpdate {
                    paper: PaperId(target as u64),
                    authors: vec![AuthorId(papers[target].0)],
                    delta: 1,
                });
            }
        }
        let corpus = Corpus::from_papers(
            papers
                .iter()
                .enumerate()
                .map(|(i, &(author, count))| Paper::solo(i as u64, author, count))
                .collect(),
        );
        CareerTrace { corpus, updates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> CareerModel {
        CareerModel {
            n_authors: 10,
            rounds: 50,
            publish_prob: 0.4,
            citations_per_round: 100,
            attach_bias: 0.8,
            seed: 3,
        }
    }

    #[test]
    fn updates_reaggregate_to_corpus() {
        let trace = small().simulate();
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for u in &trace.updates {
            *sums.entry(u.paper.0).or_default() += u.delta;
        }
        for p in trace.corpus.papers() {
            assert_eq!(
                sums.get(&p.id.0).copied().unwrap_or(0),
                p.citations,
                "paper {}",
                p.id
            );
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = small().simulate();
        let b = small().simulate();
        assert_eq!(a.corpus.papers(), b.corpus.papers());
        assert_eq!(a.updates.len(), b.updates.len());
    }

    #[test]
    fn preferential_attachment_creates_heavy_tail() {
        // With strong attachment bias, the top paper should dwarf the
        // median — the emergent power law.
        let trace = CareerModel {
            attach_bias: 0.9,
            rounds: 200,
            ..small()
        }
        .simulate();
        let mut counts = trace.corpus.citation_counts();
        counts.sort_unstable();
        let max = counts[counts.len() - 1];
        let median = counts[counts.len() / 2];
        assert!(
            max > 10 * median.max(1),
            "no heavy tail: max {max}, median {median}"
        );
    }

    #[test]
    fn no_attachment_is_roughly_uniform() {
        let trace = CareerModel {
            attach_bias: 0.0,
            rounds: 100,
            citations_per_round: 500,
            ..small()
        }
        .simulate();
        let counts = trace.corpus.citation_counts();
        let max = counts.iter().copied().max().unwrap();
        let mean = counts.iter().sum::<u64>() / counts.len() as u64;
        assert!(max < 10 * mean.max(1), "uniform regime too skewed: {max} vs {mean}");
    }

    #[test]
    fn updates_are_temporally_usable_by_cash_sketches() {
        use hindex_common::{CashRegisterEstimator as _, Estimate, h_index};
        let trace = small().simulate();
        let mut exact = hindex_baseline_shim::CashTable::new();
        for u in &trace.updates {
            exact.ingest(u.paper.0, u.delta);
        }
        assert_eq!(exact.estimate(), h_index(&trace.corpus.citation_counts()));
    }

    /// Local shim: `hindex-baseline` depends on this crate, so the test
    /// re-implements the tiny exact table to avoid a dependency cycle.
    mod hindex_baseline_shim {
        use hindex_common::CashRegisterEstimator;
        use std::collections::HashMap;

        #[derive(Default)]
        pub struct CashTable {
            counts: HashMap<u64, u64>,
        }

        impl CashTable {
            pub fn new() -> Self {
                Self::default()
            }
        }

        impl hindex_common::Estimate for CashTable {
            fn estimate(&self) -> u64 {
                let values: Vec<u64> = self.counts.values().copied().collect();
                hindex_common::h_index(&values)
            }
        }

        impl CashRegisterEstimator for CashTable {
            fn ingest(&mut self, index: u64, delta: u64) {
                *self.counts.entry(index).or_default() += delta;
            }
        }
    }

    #[test]
    #[should_panic(expected = "publish_prob in [0,1]")]
    fn bad_probability_rejected() {
        let _ = CareerModel { publish_prob: 1.5, ..small() }.simulate();
    }
}
