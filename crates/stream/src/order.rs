//! Stream orderings.
//!
//! Theorems 5/6 hold for **adversarial** orders; Theorem 9 needs a
//! **uniformly random** order. The experiment suite exercises both,
//! plus the structured adversarial orders that are hardest for each
//! algorithm (e.g. the H-support arriving last starves early counters;
//! arriving first inflates windows).

use rand::seq::SliceRandom;
use rand::Rng;

/// How to arrange the elements of an aggregate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Leave the generator's order untouched.
    AsIs,
    /// Uniformly random permutation (the Theorem 9 model).
    Random,
    /// Ascending values: the large (H-support) values arrive last.
    Ascending,
    /// Descending values: the H-support arrives first.
    Descending,
    /// Values `≥ pivot` moved to the end (in original relative order) —
    /// a targeted adversary that hides the H-support until the stream
    /// tail.
    BigLast {
        /// Values at or above this pivot are deferred.
        pivot: u64,
    },
    /// Values `≥ pivot` moved to the front.
    BigFirst {
        /// Values at or above this pivot are promoted.
        pivot: u64,
    },
}

impl StreamOrder {
    /// Applies the ordering to a vector of aggregate values in place.
    pub fn apply<R: Rng + ?Sized>(self, values: &mut Vec<u64>, rng: &mut R) {
        match self {
            StreamOrder::AsIs => {}
            StreamOrder::Random => values.shuffle(rng),
            StreamOrder::Ascending => values.sort_unstable(),
            StreamOrder::Descending => values.sort_unstable_by(|a, b| b.cmp(a)),
            StreamOrder::BigLast { pivot } => {
                let (small, big): (Vec<u64>, Vec<u64>) =
                    values.iter().partition(|&&v| v < pivot);
                values.clear();
                values.extend(small);
                values.extend(big);
            }
            StreamOrder::BigFirst { pivot } => {
                let (big, small): (Vec<u64>, Vec<u64>) =
                    values.iter().partition(|&&v| v >= pivot);
                values.clear();
                values.extend(big);
                values.extend(small);
            }
        }
    }

    /// Convenience: returns a reordered copy.
    #[must_use]
    pub fn applied<R: Rng + ?Sized>(self, values: &[u64], rng: &mut R) -> Vec<u64> {
        let mut v = values.to_vec();
        self.apply(&mut v, rng);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Vec<u64> {
        vec![5, 1, 9, 3, 9, 0, 2, 7]
    }

    #[test]
    fn as_is_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(StreamOrder::AsIs.applied(&sample(), &mut rng), sample());
    }

    #[test]
    fn sorts_sort() {
        let mut rng = StdRng::seed_from_u64(0);
        let asc = StreamOrder::Ascending.applied(&sample(), &mut rng);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let desc = StreamOrder::Descending.applied(&sample(), &mut rng);
        assert!(desc.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn random_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let shuffled = StreamOrder::Random.applied(&sample(), &mut rng);
        let mut a = shuffled.clone();
        let mut b = sample();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn big_last_defers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = StreamOrder::BigLast { pivot: 5 }.applied(&sample(), &mut rng);
        assert_eq!(v, vec![1, 3, 0, 2, 5, 9, 9, 7]);
    }

    #[test]
    fn big_first_promotes_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = StreamOrder::BigFirst { pivot: 5 }.applied(&sample(), &mut rng);
        assert_eq!(v, vec![5, 9, 9, 7, 1, 3, 0, 2]);
    }

    #[test]
    fn orderings_preserve_multiset() {
        let mut rng = StdRng::seed_from_u64(4);
        for order in [
            StreamOrder::AsIs,
            StreamOrder::Random,
            StreamOrder::Ascending,
            StreamOrder::Descending,
            StreamOrder::BigLast { pivot: 4 },
            StreamOrder::BigFirst { pivot: 4 },
        ] {
            let out = order.applied(&sample(), &mut rng);
            let mut a = out.clone();
            let mut b = sample();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{order:?}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_multiset_invariant(
            values in proptest::collection::vec(0u64..100, 0..200),
            pivot in 0u64..100,
            seed in proptest::num::u64::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            for order in [
                StreamOrder::Random,
                StreamOrder::Ascending,
                StreamOrder::BigLast { pivot },
                StreamOrder::BigFirst { pivot },
            ] {
                let out = order.applied(&values, &mut rng);
                let mut a = out.clone();
                let mut b = values.clone();
                a.sort_unstable();
                b.sort_unstable();
                proptest::prop_assert_eq!(a, b);
            }
        }
    }
}
