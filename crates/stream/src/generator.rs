//! Synthetic corpus generation.
//!
//! The paper is theory-only, so the experiment suite manufactures its
//! inputs. Real citation/retweet count distributions are heavy-tailed
//! (power laws with exponents around 2–3), which is also the "heavy
//! tail" premise of §4.2; [`CitationDist`] provides those plus the
//! degenerate distributions the worst-case tests need. Two *planted*
//! constructions give exact control of the quantity under test:
//!
//! * [`planted_h_corpus`] — a single-author corpus whose H-index is
//!   **exactly** `h` by construction;
//! * [`planted_heavy_hitters`] — a multi-author corpus where chosen
//!   authors are given large planted H-indices over a sea of
//!   low-impact authors.
//!
//! All generation is deterministic given a seed.

use crate::corpus::Corpus;
use crate::model::Paper;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of per-paper citation counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CitationDist {
    /// Every paper has exactly this many citations.
    Constant(u64),
    /// Uniform on `[lo, hi]` inclusive.
    Uniform {
        /// Smallest citation count.
        lo: u64,
        /// Largest citation count.
        hi: u64,
    },
    /// Zipf / discrete power law: `P(k) ∝ k^(−exponent)` on
    /// `[1, max]`, `exponent > 1`.
    Zipf {
        /// Tail exponent (real citation data: ≈ 2–3).
        exponent: f64,
        /// Upper truncation.
        max: u64,
    },
    /// Discretized Pareto: `⌊scale · U^(−1/alpha)⌋ − scale` shifted to
    /// include zero-citation papers, truncated at `max`.
    Pareto {
        /// Shape parameter.
        alpha: f64,
        /// Scale parameter.
        scale: f64,
        /// Upper truncation.
        max: u64,
    },
}

impl CitationDist {
    /// Samples one citation count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            CitationDist::Constant(k) => k,
            CitationDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                rng.random_range(lo..=hi)
            }
            CitationDist::Zipf { exponent, max } => sample_zipf(exponent, max, rng),
            CitationDist::Pareto { alpha, scale, max } => {
                assert!(alpha > 0.0 && scale > 0.0, "pareto parameters must be positive");
                let u: f64 = rng.random();
                let x = scale * (1.0 - u).powf(-1.0 / alpha) - scale;
                (x.floor() as u64).min(max)
            }
        }
    }
}

/// Samples from `P(k) ∝ k^(−a)` on `[1, max]` using Devroye's rejection
/// method (exact for `a > 1`), retrying on truncation.
///
/// # Panics
///
/// Panics unless `a > 1` and `max ≥ 1`.
pub fn sample_zipf<R: Rng + ?Sized>(a: f64, max: u64, rng: &mut R) -> u64 {
    assert!(a > 1.0, "zipf exponent must exceed 1 (got {a})");
    assert!(max >= 1, "zipf needs a non-empty support");
    let b = 2f64.powf(a - 1.0);
    loop {
        let u: f64 = rng.random();
        let v: f64 = rng.random();
        // Continuous envelope: X = ⌊U^(−1/(a−1))⌋.
        let x = u.powf(-1.0 / (a - 1.0)).floor();
        if !x.is_finite() || x < 1.0 {
            continue;
        }
        let t = (1.0 + 1.0 / x).powf(a - 1.0);
        if v * x * (t - 1.0) / (b - 1.0) <= t / b {
            let k = x as u64;
            if k <= max {
                return k;
            }
        }
    }
}

/// Distribution of papers per author.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProductivityDist {
    /// Every author writes exactly this many papers.
    Constant(u64),
    /// Uniform on `[lo, hi]` inclusive.
    Uniform {
        /// Fewest papers.
        lo: u64,
        /// Most papers.
        hi: u64,
    },
    /// Zipf-distributed productivity (Lotka's law) on `[1, max]`.
    Zipf {
        /// Tail exponent.
        exponent: f64,
        /// Upper truncation.
        max: u64,
    },
}

impl ProductivityDist {
    /// Samples one author's paper count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            ProductivityDist::Constant(k) => k,
            ProductivityDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                rng.random_range(lo..=hi)
            }
            ProductivityDist::Zipf { exponent, max } => sample_zipf(exponent, max, rng),
        }
    }
}

/// Configurable corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    /// Number of authors.
    pub n_authors: u64,
    /// Papers per author.
    pub productivity: ProductivityDist,
    /// Citations per paper.
    pub citations: CitationDist,
    /// Co-author count per paper is uniform on `[1, max_coauthors]`;
    /// extra authors are drawn uniformly from the author set. `1`
    /// yields single-author papers (the §3 setting).
    pub max_coauthors: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusGenerator {
    fn default() -> Self {
        Self {
            n_authors: 100,
            productivity: ProductivityDist::Constant(20),
            citations: CitationDist::Zipf { exponent: 2.0, max: 100_000 },
            max_coauthors: 1,
            seed: 0,
        }
    }
}

impl CorpusGenerator {
    /// Generates the corpus. Paper ids are dense `0..n_papers`.
    #[must_use]
    pub fn generate(&self) -> Corpus {
        assert!(self.n_authors >= 1, "need at least one author");
        assert!(self.max_coauthors >= 1, "papers need at least one author");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut corpus = Corpus::new();
        let mut paper_id = 0u64;
        for author in 0..self.n_authors {
            let n_papers = self.productivity.sample(&mut rng);
            for _ in 0..n_papers {
                let c = self.citations.sample(&mut rng);
                let mut authors = vec![author];
                if self.max_coauthors > 1 {
                    let extra = rng.random_range(0..self.max_coauthors);
                    for _ in 0..extra {
                        let co = rng.random_range(0..self.n_authors);
                        if !authors.contains(&co) {
                            authors.push(co);
                        }
                    }
                }
                corpus.push(Paper::with_authors(paper_id, &authors, c));
                paper_id += 1;
            }
        }
        corpus
    }
}

/// Builds a single-author corpus whose H-index is **exactly** `h`.
///
/// Construction: `h` papers with citations uniform in `[h, head_max]`
/// (the H-support), and `n_papers − h` noise papers with citations
/// uniform in `[0, h−1]` (never counting toward level `h+1`); hence at
/// least `h` papers have `≥ h` citations, and at most `h` papers have
/// `≥ h+1`, so `h* = h` exactly (for `h ≥ 1`; `h = 0` yields all-zero
/// noise papers).
///
/// # Panics
///
/// Panics if `h > n_papers as u64`.
#[must_use]
pub fn planted_h_corpus(h: u64, n_papers: usize, seed: u64) -> Corpus {
    assert!(h <= n_papers as u64, "cannot plant h = {h} in {n_papers} papers");
    let mut rng = StdRng::seed_from_u64(seed);
    let head_max = (3 * h).max(1);
    let mut counts = Vec::with_capacity(n_papers);
    for _ in 0..h {
        counts.push(rng.random_range(h..=head_max));
    }
    for _ in h..n_papers as u64 {
        counts.push(if h == 0 { 0 } else { rng.random_range(0..h) });
    }
    Corpus::solo_from_counts(&counts)
}

/// Builds a multi-author corpus with chosen authors planted as heavy
/// hitters.
///
/// Heavy author `i` gets a planted H-index of `heavy_h[i]`; `n_noise`
/// further authors each write `noise_papers` papers with citations
/// uniform in `[0, noise_max]`. Author ids: heavy authors are
/// `0..heavy_h.len()`, noise authors follow.
#[must_use]
pub fn planted_heavy_hitters(
    heavy_h: &[u64],
    n_noise: u64,
    noise_papers: u64,
    noise_max: u64,
    seed: u64,
) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Corpus::new();
    let mut paper_id = 0u64;
    for (author, &h) in heavy_h.iter().enumerate() {
        let head_max = (3 * h).max(1);
        for _ in 0..h {
            let c = rng.random_range(h..=head_max);
            corpus.push(Paper::solo(paper_id, author as u64, c));
            paper_id += 1;
        }
        // A few sub-h noise papers so the planted authors are not
        // degenerate "every paper counts" users.
        for _ in 0..(h / 2) {
            let c = if h == 0 { 0 } else { rng.random_range(0..h) };
            corpus.push(Paper::solo(paper_id, author as u64, c));
            paper_id += 1;
        }
    }
    let base = heavy_h.len() as u64;
    for a in 0..n_noise {
        for _ in 0..noise_papers {
            let c = rng.random_range(0..=noise_max);
            corpus.push(Paper::solo(paper_id, base + a, c));
            paper_id += 1;
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AuthorId;
    use hindex_common::h_index;

    #[test]
    fn constant_and_uniform_dists() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(CitationDist::Constant(9).sample(&mut rng), 9);
        for _ in 0..100 {
            let v = CitationDist::Uniform { lo: 3, hi: 7 }.sample(&mut rng);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn zipf_support_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = CitationDist::Zipf { exponent: 2.0, max: 1000 };
        let n = 50_000;
        let mut ones = 0u64;
        let mut twos = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1..=1000).contains(&v));
            if v == 1 {
                ones += 1;
            } else if v == 2 {
                twos += 1;
            }
        }
        // P(1)/P(2) = 2^a = 4 for a = 2; allow generous slack.
        let ratio = ones as f64 / twos as f64;
        assert!((3.0..5.2).contains(&ratio), "ratio {ratio}");
        // P(1) = 1/ζ(2) ≈ 0.61 for the untruncated law.
        let p1 = ones as f64 / f64::from(n);
        assert!((0.55..0.67).contains(&p1), "p1 {p1}");
    }

    #[test]
    fn zipf_heavier_exponent_means_lighter_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample_max = |a: f64, rng: &mut StdRng| {
            (0..5000)
                .map(|_| sample_zipf(a, 1_000_000, rng))
                .max()
                .unwrap()
        };
        let heavy = sample_max(1.5, &mut rng);
        let light = sample_max(3.0, &mut rng);
        assert!(heavy > light, "heavy {heavy} vs light {light}");
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn zipf_exponent_one_panics() {
        let _ = sample_zipf(1.0, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn pareto_truncates() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = CitationDist::Pareto { alpha: 1.2, scale: 5.0, max: 50 };
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) <= 50);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let g = CorpusGenerator { seed: 42, ..CorpusGenerator::default() };
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.papers(), b.papers());
    }

    #[test]
    fn generator_respects_counts() {
        let g = CorpusGenerator {
            n_authors: 10,
            productivity: ProductivityDist::Constant(5),
            citations: CitationDist::Constant(1),
            max_coauthors: 1,
            seed: 0,
        };
        let c = g.generate();
        assert_eq!(c.len(), 50);
        let gt = c.ground_truth();
        assert_eq!(gt.per_author.len(), 10);
        for &h in gt.per_author.values() {
            assert_eq!(h, 1); // five papers with one citation each
        }
    }

    #[test]
    fn generator_coauthors_bounded() {
        let g = CorpusGenerator {
            n_authors: 20,
            productivity: ProductivityDist::Constant(3),
            max_coauthors: 4,
            seed: 7,
            ..CorpusGenerator::default()
        };
        for p in g.generate().papers() {
            assert!(!p.authors.is_empty() && p.authors.len() <= 4);
            // No duplicate authors on a paper.
            let mut a: Vec<_> = p.authors.clone();
            a.sort_unstable();
            a.dedup();
            assert_eq!(a.len(), p.authors.len());
        }
    }

    #[test]
    fn planted_h_is_exact() {
        for &(h, n) in &[(0u64, 10usize), (1, 10), (5, 100), (50, 1000), (100, 100)] {
            for seed in 0..5 {
                let c = planted_h_corpus(h, n, seed);
                assert_eq!(c.len(), n);
                assert_eq!(h_index(&c.citation_counts()), h, "h={h} n={n} seed={seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn planted_h_too_large_panics() {
        let _ = planted_h_corpus(11, 10, 0);
    }

    #[test]
    fn planted_heavy_hitters_ground_truth() {
        let c = planted_heavy_hitters(&[40, 25], 50, 10, 2, 9);
        let gt = c.ground_truth();
        assert_eq!(gt.per_author[&AuthorId(0)], 40);
        assert_eq!(gt.per_author[&AuthorId(1)], 25);
        // Noise authors have h ≤ 2 (citations capped at 2).
        for a in 2..52u64 {
            assert!(gt.per_author[&AuthorId(a)] <= 2, "author {a}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_planted_h_exact(h in 0u64..200, extra in 0usize..200, seed in proptest::num::u64::ANY) {
            let n = h as usize + extra;
            let c = planted_h_corpus(h, n, seed);
            proptest::prop_assert_eq!(h_index(&c.citation_counts()), h);
        }

        #[test]
        fn prop_zipf_in_range(a_tenths in 12u32..40, max in 1u64..10_000, seed in proptest::num::u64::ANY) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = sample_zipf(f64::from(a_tenths) / 10.0, max, &mut rng);
            proptest::prop_assert!((1..=max).contains(&v));
        }
    }
}
