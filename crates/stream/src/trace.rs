//! Corpus and stream persistence: a plain-text trace format.
//!
//! Experiments and the CLI exchange workloads as files; this module
//! defines the (human-readable, diff-able) format and its round-trip
//! parsers. No serialization crates — the format is three whitespace
//! columns:
//!
//! ```text
//! # hindex-corpus v1
//! # paper  authors(comma-separated)  citations
//! 0  17        42
//! 1  17,23     7
//! ```
//!
//! Lines starting with `#` and blank lines are ignored on read.

use crate::corpus::Corpus;
use crate::model::Paper;
use std::fmt::Write as FmtWrite;
use std::io::{BufRead, BufReader, Read, Write};

/// The header written at the top of every corpus trace.
pub const HEADER: &str = "# hindex-corpus v1";

/// Serializes a corpus to the trace format.
#[must_use]
pub fn corpus_to_string(corpus: &Corpus) -> String {
    let mut out = String::with_capacity(corpus.len() * 16 + 64);
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "# paper authors citations");
    for p in corpus.papers() {
        let authors: Vec<String> = p.authors.iter().map(|a| a.0.to_string()).collect();
        let _ = writeln!(out, "{} {} {}", p.id.0, authors.join(","), p.citations);
    }
    out
}

/// Writes a corpus trace to any sink.
///
/// # Errors
///
/// Propagates I/O errors as strings.
pub fn write_corpus(corpus: &Corpus, sink: &mut dyn Write) -> Result<(), String> {
    sink.write_all(corpus_to_string(corpus).as_bytes())
        .map_err(|e| format!("write failed: {e}"))
}

/// Reads a corpus trace.
///
/// # Errors
///
/// Reports the offending line number for malformed records.
pub fn read_corpus(source: &mut dyn Read) -> Result<Corpus, String> {
    let mut corpus = Corpus::new();
    for (no, line) in BufReader::new(source).lines().enumerate() {
        let line = line.map_err(|e| format!("read failed on line {}: {e}", no + 1))?;
        let meaningful = line.split('#').next().unwrap_or("").trim();
        if meaningful.is_empty() {
            continue;
        }
        let mut parts = meaningful.split_whitespace();
        let bad = || format!("line {}: expected `paper authors citations`, got `{line}`", no + 1);
        let paper: u64 = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        let authors_field = parts.next().ok_or_else(bad)?;
        let citations: u64 = parts.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", no + 1));
        }
        let authors: Result<Vec<u64>, String> = authors_field
            .split(',')
            .map(|a| {
                a.parse::<u64>()
                    .map_err(|_| format!("line {}: bad author id `{a}`", no + 1))
            })
            .collect();
        corpus.push(Paper::with_authors(paper, &authors?, citations));
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::planted_heavy_hitters;
    use crate::model::AuthorId;

    #[test]
    fn roundtrip_preserves_everything() {
        let corpus = planted_heavy_hitters(&[20, 10], 15, 3, 4, 7);
        let text = corpus_to_string(&corpus);
        let mut cursor = std::io::Cursor::new(text.into_bytes());
        let back = read_corpus(&mut cursor).unwrap();
        assert_eq!(corpus.papers(), back.papers());
    }

    #[test]
    fn roundtrip_ground_truth_identical() {
        let corpus = planted_heavy_hitters(&[30], 40, 4, 3, 9);
        let mut cursor = std::io::Cursor::new(corpus_to_string(&corpus).into_bytes());
        let back = read_corpus(&mut cursor).unwrap();
        let (a, b) = (corpus.ground_truth(), back.ground_truth());
        assert_eq!(a.per_author, b.per_author);
        assert_eq!(a.combined_h, b.combined_h);
        assert_eq!(a.total_citations, b.total_citations);
    }

    #[test]
    fn multi_author_roundtrip() {
        let mut corpus = Corpus::new();
        corpus.push(Paper::with_authors(0, &[5, 9, 12], 77));
        let mut cursor = std::io::Cursor::new(corpus_to_string(&corpus).into_bytes());
        let back = read_corpus(&mut cursor).unwrap();
        assert_eq!(
            back.papers()[0].authors,
            vec![AuthorId(5), AuthorId(9), AuthorId(12)]
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\n0 1 5\n# mid\n1 1 3  # trailing\n";
        let mut cursor = std::io::Cursor::new(text.as_bytes().to_vec());
        let corpus = read_corpus(&mut cursor).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.papers()[1].citations, 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1 5\nbogus line here extra\n";
        let mut cursor = std::io::Cursor::new(text.as_bytes().to_vec());
        let err = read_corpus(&mut cursor).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_corpus_roundtrip() {
        let mut cursor = std::io::Cursor::new(corpus_to_string(&Corpus::new()).into_bytes());
        assert!(read_corpus(&mut cursor).unwrap().is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_roundtrip(
            papers in proptest::collection::vec(
                (0u64..1_000_000, proptest::collection::vec(0u64..10_000, 1..4), 0u64..100_000),
                0..50,
            ),
        ) {
            let mut corpus = Corpus::new();
            for (id, mut authors, c) in papers {
                authors.sort_unstable();
                authors.dedup();
                corpus.push(Paper::with_authors(id, &authors, c));
            }
            let mut cursor = std::io::Cursor::new(corpus_to_string(&corpus).into_bytes());
            let back = read_corpus(&mut cursor).unwrap();
            proptest::prop_assert_eq!(corpus.papers(), back.papers());
        }
    }
}
