//! Cash-register streams: unaggregated citation updates.
//!
//! §2.3: "each tuple corresponds to the i-th update to the number of
//! citations of paper p, such that `c_p = Σᵢ c_pⁱ`". [`Unaggregator`]
//! turns a finished corpus into such an update stream, splitting each
//! paper's citation total into unit or batched updates and interleaving
//! them, so the cash-register algorithms see citations trickle in the
//! way they would arrive live.

use crate::corpus::Corpus;
use crate::model::{AuthorId, PaperId};
use rand::seq::SliceRandom;
use rand::Rng;

/// One cash-register update: paper `paper` (by authors `authors`)
/// gained `delta` citations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CashUpdate {
    /// The cited paper.
    pub paper: PaperId,
    /// The paper's authors (carried so heavy-hitter algorithms can
    /// attribute updates).
    pub authors: Vec<AuthorId>,
    /// Citations gained (`≥ 1`).
    pub delta: u64,
}

/// Splits a corpus into a cash-register update stream.
#[derive(Debug, Clone, Copy)]
pub struct Unaggregator {
    /// Maximum citations delivered per update; each paper's total is
    /// split into chunks of random size in `[1, max_batch]`.
    pub max_batch: u64,
    /// Shuffle the final update stream (`true` interleaves papers the
    /// way live feedback would; `false` keeps each paper's updates
    /// contiguous).
    pub shuffle: bool,
}

impl Default for Unaggregator {
    fn default() -> Self {
        Self { max_batch: 1, shuffle: true }
    }
}

impl Unaggregator {
    /// Materializes the update stream.
    ///
    /// Papers with zero citations produce no updates (nobody responded).
    /// The sum of deltas per paper equals its aggregate count exactly.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    #[must_use]
    pub fn stream<R: Rng + ?Sized>(&self, corpus: &Corpus, rng: &mut R) -> Vec<CashUpdate> {
        assert!(self.max_batch >= 1, "batch size must be positive");
        let mut updates = Vec::new();
        for paper in corpus.papers() {
            let mut remaining = paper.citations;
            while remaining > 0 {
                let delta = rng.random_range(1..=self.max_batch.min(remaining));
                updates.push(CashUpdate {
                    paper: paper.id,
                    authors: paper.authors.clone(),
                    delta,
                });
                remaining -= delta;
            }
        }
        if self.shuffle {
            updates.shuffle(rng);
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Paper;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn corpus() -> Corpus {
        Corpus::from_papers(vec![
            Paper::solo(0, 1, 5),
            Paper::solo(1, 1, 0),
            Paper::with_authors(2, &[1, 2], 3),
        ])
    }

    #[test]
    fn unit_updates_sum_to_totals() {
        let mut rng = StdRng::seed_from_u64(0);
        let updates = Unaggregator::default().stream(&corpus(), &mut rng);
        assert_eq!(updates.len(), 8); // 5 + 0 + 3 unit updates
        let mut sums: HashMap<PaperId, u64> = HashMap::new();
        for u in &updates {
            assert_eq!(u.delta, 1);
            *sums.entry(u.paper).or_default() += u.delta;
        }
        assert_eq!(sums[&PaperId(0)], 5);
        assert_eq!(sums.get(&PaperId(1)), None);
        assert_eq!(sums[&PaperId(2)], 3);
    }

    #[test]
    fn batched_updates_sum_to_totals() {
        let mut rng = StdRng::seed_from_u64(1);
        let ua = Unaggregator { max_batch: 4, shuffle: false };
        let updates = ua.stream(&corpus(), &mut rng);
        let mut sums: HashMap<PaperId, u64> = HashMap::new();
        for u in &updates {
            assert!((1..=4).contains(&u.delta));
            *sums.entry(u.paper).or_default() += u.delta;
        }
        assert_eq!(sums[&PaperId(0)], 5);
        assert_eq!(sums[&PaperId(2)], 3);
    }

    #[test]
    fn authors_carried_through() {
        let mut rng = StdRng::seed_from_u64(2);
        let updates = Unaggregator { max_batch: 10, shuffle: false }.stream(&corpus(), &mut rng);
        let multi = updates.iter().find(|u| u.paper == PaperId(2)).unwrap();
        assert_eq!(multi.authors, vec![AuthorId(1), AuthorId(2)]);
    }

    #[test]
    fn unshuffled_is_contiguous() {
        let mut rng = StdRng::seed_from_u64(3);
        let updates = Unaggregator { max_batch: 1, shuffle: false }.stream(&corpus(), &mut rng);
        // Paper 0's five unit updates come first.
        assert!(updates[..5].iter().all(|u| u.paper == PaperId(0)));
    }

    proptest::proptest! {
        #[test]
        fn prop_deltas_reaggregate(
            counts in proptest::collection::vec(0u64..50, 1..30),
            max_batch in 1u64..10,
            shuffle in proptest::bool::ANY,
            seed in proptest::num::u64::ANY,
        ) {
            let c = Corpus::solo_from_counts(&counts);
            let mut rng = StdRng::seed_from_u64(seed);
            let updates = Unaggregator { max_batch, shuffle }.stream(&c, &mut rng);
            let mut sums: HashMap<PaperId, u64> = HashMap::new();
            for u in &updates {
                proptest::prop_assert!(u.delta >= 1 && u.delta <= max_batch);
                *sums.entry(u.paper).or_default() += u.delta;
            }
            for (i, &count) in counts.iter().enumerate() {
                proptest::prop_assert_eq!(sums.get(&PaperId(i as u64)).copied().unwrap_or(0), count);
            }
        }
    }
}
