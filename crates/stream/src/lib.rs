//! Data model, stream models and synthetic workload generators.
//!
//! §2.2 of the paper fixes an *author / paper / citation* model: a paper
//! is a tuple `(p, a₁, …, a_y, c_p)` of its id, authors and citation
//! count. §2.3 defines the three stream models the algorithms consume:
//!
//! * **aggregate** — each paper's finished citation total appears once,
//!   in adversarial order;
//! * **random-order aggregate** — same elements, uniformly random order;
//! * **cash register** — a stream of updates `(p, z)` meaning paper `p`
//!   gained `z` citations.
//!
//! The paper proves guarantees but runs no experiments; this crate's
//! [`generator`] module builds the synthetic corpora the experiment
//! suite uses instead: heavy-tailed (Zipf/Pareto) citation counts —
//! matching the empirical distribution of real citation and retweet
//! data, and the "heavy-tail" premise of §4.2 — plus planted-H-index
//! and planted-heavy-hitter corpora where ground truth is controlled
//! exactly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod career;
pub mod cash;
pub mod corpus;
pub mod generator;
pub mod model;
pub mod order;
pub mod trace;

pub use career::{CareerModel, CareerTrace};
pub use cash::{CashUpdate, Unaggregator};
pub use corpus::{Corpus, GroundTruth};
pub use generator::{CitationDist, CorpusGenerator, ProductivityDist};
pub use model::{AuthorId, Paper, PaperId};
pub use order::StreamOrder;

/// One-stop imports.
pub mod prelude {
    pub use crate::cash::{CashUpdate, Unaggregator};
    pub use crate::corpus::{Corpus, GroundTruth};
    pub use crate::generator::{CitationDist, CorpusGenerator, ProductivityDist};
    pub use crate::model::{AuthorId, Paper, PaperId};
    pub use crate::order::StreamOrder;
}
