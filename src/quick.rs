//! One-call conveniences for the common cases.
//!
//! The full API (crate `hindex_core`) exposes every knob; these helpers
//! cover the "just give me the number" path with sensible defaults and
//! a single function call each.

use hindex_common::{AggregateEstimator, CashRegisterEstimator, Delta, Epsilon, Estimate, Result};
use hindex_core::{
    CashRegisterHIndex, CashRegisterParams, HeavyHitterCandidate, HeavyHitters,
    HeavyHittersParams, ShiftingWindow,
};
use hindex_stream::Paper;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(1−ε)`-approximate H-index of an aggregate stream in
/// `O(ε⁻¹ log ε⁻¹)` words (Algorithm 2 with defaults).
///
/// ```
/// let counts = [10u64, 8, 5, 4, 3]; // true h = 4
/// let h = hindex::quick::h_index_stream(counts, 0.1).unwrap();
/// assert!(h == 3 || h == 4);
/// ```
///
/// # Errors
///
/// Invalid `epsilon`.
pub fn h_index_stream<I: IntoIterator<Item = u64>>(values: I, epsilon: f64) -> Result<u64> {
    let mut est = ShiftingWindow::new(Epsilon::new(epsilon)?);
    est.extend_from(values);
    Ok(est.estimate())
}

/// H-index estimate from a cash-register update stream
/// (`(paper, delta)` pairs), additive guarantee `±ε·D` with
/// probability `1 − δ` (Algorithm 6 with defaults; deterministic given
/// `seed`).
///
/// ```
/// // 20 papers × 25 citations each, delivered as updates: h = 20.
/// let updates: Vec<(u64, u64)> = (0..20u64).flat_map(|p| (0..5).map(move |_| (p, 5))).collect();
/// let h = hindex::quick::h_index_updates(updates, 0.25, 0.1, 7).unwrap();
/// assert!((14..=26).contains(&h));
/// ```
///
/// # Errors
///
/// Invalid `epsilon` or `delta`.
pub fn h_index_updates<I: IntoIterator<Item = (u64, u64)>>(
    updates: I,
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> Result<u64> {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(epsilon)?,
        delta: Delta::new(delta)?,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut est = CashRegisterHIndex::new(params, &mut rng);
    for (paper, d) in updates {
        est.ingest(paper, d);
    }
    Ok(est.estimate())
}

/// The ε-heavy H-index authors of a paper stream (Algorithm 8 with
/// defaults; deterministic given `seed`).
///
/// ```
/// use hindex_stream::Paper;
/// let mut papers: Vec<Paper> = (0..40).map(|i| Paper::solo(i, 7, 50)).collect();
/// papers.extend((40..60).map(|i| Paper::solo(i, i, 1)));
/// let heavy = hindex::quick::heavy_hitters(&papers, 0.25, 0.1, 3).unwrap();
/// assert_eq!(heavy[0].author.0, 7);
/// ```
///
/// # Errors
///
/// Invalid `epsilon` or `delta`.
pub fn heavy_hitters(
    papers: &[Paper],
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> Result<Vec<HeavyHitterCandidate>> {
    let params = HeavyHittersParams::new(Epsilon::new(epsilon)?, Delta::new(delta)?);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hh = HeavyHitters::new(params, &mut rng);
    for p in papers {
        hh.push(p);
    }
    Ok(hh.decode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hindex_common::h_index;

    #[test]
    fn stream_helper_respects_guarantee() {
        let values: Vec<u64> = (1..=1000).collect();
        let truth = h_index(&values);
        let got = h_index_stream(values, 0.1).unwrap();
        assert!(got <= truth && got as f64 >= 0.9 * truth as f64);
    }

    #[test]
    fn stream_helper_rejects_bad_epsilon() {
        assert!(h_index_stream([1u64, 2], 1.5).is_err());
    }

    #[test]
    fn updates_helper_deterministic_by_seed() {
        let updates: Vec<(u64, u64)> = (0..30u64).map(|p| (p, 40)).collect();
        let a = h_index_updates(updates.clone(), 0.3, 0.2, 11).unwrap();
        let b = h_index_updates(updates, 0.3, 0.2, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_hitters_helper_finds_planted() {
        let corpus = hindex_stream::generator::planted_heavy_hitters(&[60], 30, 3, 2, 5);
        let out = heavy_hitters(corpus.papers(), 0.2, 0.1, 1).unwrap();
        assert!(out.iter().any(|c| c.author.0 == 0));
    }
}
