//! # hindex — Streaming Algorithms for Measuring H-Impact
//!
//! Facade crate re-exporting the whole workspace. See the individual
//! crates for details:
//!
//! * [`hindex_common`] (re-exported as [`common`]) — definitions, exact
//!   algorithms, traits;
//! * [`hindex_hashing`] ([`hashing`]) — k-wise independent hash families;
//! * [`hindex_sketch`] ([`sketch`]) — ℓ₀-samplers, sparse recovery,
//!   distinct-count estimators;
//! * [`hindex_stream`] ([`stream`]) — data model, stream models,
//!   synthetic corpus generators;
//! * [`hindex_baseline`] ([`baseline`]) — exact streaming baselines;
//! * [`hindex_core`] ([`core`]) — the paper's algorithms (Algorithms
//!   1–8 of PODS'17);
//! * [`hindex_engine`] ([`engine`]) — sharded, batched, multi-threaded
//!   ingestion over any mergeable estimator.
//!
//! ## Quickstart
//!
//! ```
//! use hindex::prelude::*;
//!
//! // Aggregate model: a stream of per-paper citation totals.
//! let eps = Epsilon::new(0.1).unwrap();
//! let mut sketch = ShiftingWindow::new(eps);
//! for citations in [12u64, 40, 3, 9, 27, 5, 11, 8, 19, 2] {
//!     sketch.ingest(citations);
//! }
//! let estimate = sketch.estimate();
//! let truth = h_index(&[12, 40, 3, 9, 27, 5, 11, 8, 19, 2]);
//! assert!(estimate <= truth && (estimate as f64) >= (1.0 - 0.1) * truth as f64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod quick;

pub use hindex_baseline as baseline;
pub use hindex_common as common;
pub use hindex_core as core;
pub use hindex_engine as engine;
pub use hindex_hashing as hashing;
pub use hindex_obs as obs;
pub use hindex_sketch as sketch;
pub use hindex_stream as stream;

/// One-stop imports for applications.
pub mod prelude {
    pub use hindex_common::{AggregateEstimator, CashRegisterEstimator, Delta, Epsilon, Estimate, EstimatorParams, IncrementalHIndex, Mergeable, SpaceUsage, TurnstileEstimator, h_index, h_support};
    pub use hindex_core::prelude::*;
    pub use hindex_engine::{
        BatchIngest, Degraded, Engine, EngineCheckpoint, EngineConfig, EngineError, FaultKind,
        FaultPlan, QueryReport, ReadHandle, ReadView, Routable, ShardedEngine, SupervisedEngine,
        SupervisorConfig,
    };
    pub use hindex_obs::{EngineObserver, Event, EventKind, MetricsSnapshot, Tracer};
    pub use hindex_stream::prelude::*;
}
