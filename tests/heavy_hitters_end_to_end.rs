//! End-to-end tests of the heavy-hitter pipeline (§4): planted
//! corpora → Algorithm 8 → precision/recall against the exact
//! per-author table.

use hindex::prelude::*;
use hindex_baseline::AuthorTable;
use hindex_stream::generator::planted_heavy_hitters;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sketch_on(corpus: &Corpus, eps: f64, seed: u64) -> HeavyHitters {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = HeavyHittersParams::new(
        Epsilon::new(eps).unwrap(),
        Delta::new(0.05).unwrap(),
    );
    let mut hh = HeavyHitters::new(params, &mut rng);
    for p in corpus.papers() {
        hh.push(p);
    }
    hh
}

#[test]
fn recall_of_ground_truth_heavy_set() {
    let corpus = planted_heavy_hitters(&[80, 60], 60, 4, 2, 1);
    let truth = corpus.ground_truth();
    let eps = 0.2;
    let expected = truth.heavy_hitters(eps);
    assert!(!expected.is_empty());
    let mut perfect = 0;
    let trials = 8;
    for seed in 0..trials {
        let hh = sketch_on(&corpus, eps, seed);
        let out = hh.decode();
        if expected
            .iter()
            .all(|&(a, _)| out.iter().any(|c| c.author == a))
        {
            perfect += 1;
        }
    }
    assert!(perfect >= trials - 1, "full recall in only {perfect}/{trials} runs");
}

#[test]
fn estimates_within_eps_of_author_truth() {
    let corpus = planted_heavy_hitters(&[100], 40, 3, 2, 2);
    let truth = corpus.ground_truth();
    let eps = 0.2;
    for seed in 0..5 {
        let hh = sketch_on(&corpus, eps, seed);
        if let Some(c) = hh.decode().iter().find(|c| c.author == AuthorId(0)) {
            let h = truth.per_author[&AuthorId(0)] as f64;
            assert!(
                (c.h_estimate as f64) >= (1.0 - 1.5 * eps) * h
                    && (c.h_estimate as f64) <= (1.0 + 1.5 * eps) * h,
                "seed {seed}: {} vs {h}",
                c.h_estimate
            );
        } else {
            panic!("seed {seed}: heavy author not found");
        }
    }
}

#[test]
fn agrees_with_exact_author_table() {
    let corpus = planted_heavy_hitters(&[70, 50], 80, 4, 3, 3);
    let mut table = AuthorTable::new();
    for p in corpus.papers() {
        table.ingest(p);
    }
    let eps = 0.2;
    let exact_heavy = table.heavy_hitters(eps);
    let hh = sketch_on(&corpus, eps, 9);
    let out = hh.decode();
    // Every exact heavy hitter is found…
    for &(a, _) in &exact_heavy {
        assert!(out.iter().any(|c| c.author == a), "missed {a}");
    }
    // …and nothing wildly light is reported: every reported author's
    // true H-index clears half the bar (the ε-slack of Theorem 18).
    let bar = eps * table.total_impact() as f64;
    for c in &out {
        let h = table.h_index(c.author) as f64;
        assert!(h >= bar / 2.0, "{}: true h {h} far below bar {bar}", c.author);
    }
}

#[test]
fn multi_author_papers_flow_through() {
    // Co-authored papers: both heavy co-authors must be recoverable.
    let mut corpus = Corpus::new();
    for i in 0..60u64 {
        corpus.push(Paper::with_authors(i, &[0, 1], 100));
    }
    for i in 60..100u64 {
        corpus.push(Paper::solo(i, 2 + i, 1));
    }
    let hh = sketch_on(&corpus, 0.3, 4);
    let out = hh.decode_with_threshold(20);
    // Authors 0 and 1 have identical h = 60; they hash to different
    // buckets whp and each dominates its own bucket.
    for a in [0u64, 1] {
        assert!(
            out.iter().any(|c| c.author == AuthorId(a)),
            "author {a} missing from {out:?}"
        );
    }
}

#[test]
fn one_heavy_hitter_primitive_roundtrip() {
    // Algorithm 7 standalone over a full corpus stream.
    let corpus = planted_heavy_hitters(&[90], 10, 2, 2, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut det = OneHeavyHitter::new(Epsilon::new(0.2).unwrap(), 0.05, &mut rng);
    for p in corpus.papers() {
        det.push(p);
    }
    match det.decode() {
        OneHeavyHitterOutcome::Author { author, h_estimate } => {
            assert_eq!(author, AuthorId(0));
            let h = corpus.ground_truth().per_author[&AuthorId(0)];
            assert!(h_estimate <= h && h_estimate as f64 >= 0.7 * h as f64);
        }
        OneHeavyHitterOutcome::Fail => panic!("dominant author not detected"),
    }
}
