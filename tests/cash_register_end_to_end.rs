//! End-to-end tests of the cash-register pipeline: corpus →
//! unaggregated update stream → Algorithm 5/6 sketch vs the exact
//! table baseline.

use hindex::prelude::*;
use hindex_baseline::CashTable;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_both(
    corpus: &Corpus,
    params: CashRegisterParams,
    max_batch: u64,
    seed: u64,
) -> (u64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sketch = CashRegisterHIndex::new(params, &mut rng);
    let mut exact = CashTable::new();
    let updates = Unaggregator { max_batch, shuffle: true }.stream(corpus, &mut rng);
    for u in &updates {
        sketch.ingest(u.paper.0, u.delta);
        exact.ingest(u.paper.0, u.delta);
    }
    (sketch.estimate(), exact.estimate(), exact.distinct())
}

#[test]
fn additive_guarantee_across_seeds() {
    let corpus = hindex_stream::generator::planted_h_corpus(30, 120, 1);
    let eps = 0.25;
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(eps).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let mut ok = 0;
    let trials = 8;
    for seed in 0..trials {
        let (got, truth, distinct) = run_both(&corpus, params, 2, seed);
        assert_eq!(truth, 30);
        if (got as f64 - truth as f64).abs() <= eps * distinct as f64 {
            ok += 1;
        }
    }
    assert!(ok >= trials - 1, "additive bound held in only {ok}/{trials} runs");
}

#[test]
fn exact_table_matches_aggregate_truth() {
    // Whatever the batching, replaying the cash stream through the
    // exact table must reproduce the corpus H-index.
    let corpus = CorpusGenerator {
        n_authors: 1,
        productivity: ProductivityDist::Constant(500),
        citations: CitationDist::Zipf { exponent: 2.0, max: 10_000 },
        max_coauthors: 1,
        seed: 2,
    }
    .generate();
    let truth = h_index(&corpus.citation_counts());
    for max_batch in [1u64, 3, 10] {
        let mut rng = StdRng::seed_from_u64(max_batch);
        let mut exact = CashTable::new();
        for u in (Unaggregator { max_batch, shuffle: true }).stream(&corpus, &mut rng) {
            exact.ingest(u.paper.0, u.delta);
        }
        assert_eq!(exact.estimate(), truth, "batch {max_batch}");
    }
}

#[test]
fn batching_does_not_change_the_sketch_answer_scale() {
    // The sketch sees the same final vector whether citations arrive
    // one at a time or in bursts; estimates from both runs must agree
    // up to the guarantee.
    let corpus = hindex_stream::generator::planted_h_corpus(25, 80, 3);
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.25).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let (unit, truth, d) = run_both(&corpus, params, 1, 10);
    let (burst, _, _) = run_both(&corpus, params, 8, 10);
    let slack = 2.0 * 0.25 * d as f64;
    assert!(
        (unit as f64 - burst as f64).abs() <= slack,
        "unit {unit} vs burst {burst} (truth {truth})"
    );
}

#[test]
fn sampler_values_match_exact_counts() {
    // Cross-validate the ℓ₀-sampler ensemble against the exact table:
    // every sampled (paper, count) must be exactly right.
    let corpus = hindex_stream::generator::planted_h_corpus(20, 60, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    let mut sketch = CashRegisterHIndex::new(params, &mut rng);
    let mut exact = CashTable::new();
    for u in Unaggregator::default().stream(&corpus, &mut rng) {
        sketch.ingest(u.paper.0, u.delta);
        exact.ingest(u.paper.0, u.delta);
    }
    let samples = sketch.draw_samples();
    assert!(!samples.is_empty());
    for (paper, count) in samples {
        assert_eq!(count, exact.count(paper), "paper {paper}");
    }
}
