//! Merge semantics: every linear sketch must satisfy
//! `merge(sketch(A), sketch(B)) ≡ sketch(A ++ B)` — the property that
//! makes the paper's algorithms usable over sharded/distributed
//! streams.

use hindex::prelude::*;
use hindex_sketch::distinct::DistinctCounter;
use hindex_sketch::{Bjkst, CountMin, L0Sampler, OneSparseRecovery, SparseRecovery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn exponential_histogram_merge_equals_concat() {
    let eps = Epsilon::new(0.15).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let a_vals: Vec<u64> = (0..5_000).map(|_| rng.random_range(0..10_000)).collect();
    let b_vals: Vec<u64> = (0..3_000).map(|_| rng.random_range(0..500)).collect();

    let mut a = ExponentialHistogram::new(eps);
    let mut b = ExponentialHistogram::new(eps);
    a.extend_from(a_vals.iter().copied());
    b.extend_from(b_vals.iter().copied());
    a.merge(&b);

    let mut whole = ExponentialHistogram::new(eps);
    whole.extend_from(a_vals.iter().copied().chain(b_vals.iter().copied()));

    assert_eq!(a.estimate(), whole.estimate());
    assert_eq!(a.counters(), whole.counters());
}

#[test]
fn exponential_histogram_merge_asymmetric_levels() {
    // One shard saw only tiny values, the other only huge ones: the
    // merged level vector must cover the union.
    let eps = Epsilon::new(0.3).unwrap();
    let mut small = ExponentialHistogram::new(eps);
    let mut big = ExponentialHistogram::new(eps);
    small.extend_from([1u64, 2, 3]);
    big.extend_from([1_000_000u64; 5]);
    let mut merged_sb = small.clone();
    merged_sb.merge(&big);
    let mut merged_bs = big.clone();
    merged_bs.merge(&small);
    assert_eq!(merged_sb.counters(), merged_bs.counters());
}

#[test]
fn bjkst_merge_equals_concat_estimate() {
    let mut rng = StdRng::seed_from_u64(1);
    let proto = Bjkst::new(0.1, 0.01, &mut rng);

    let mut a = proto.clone();
    let mut b = proto.clone();
    let mut whole = proto.clone();
    for i in 0..30_000u64 {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        whole.observe(key);
        if i % 2 == 0 {
            a.observe(key);
        } else {
            b.observe(key);
        }
        // Overlap: both shards see some common keys.
        if i % 10 == 0 {
            a.observe(key);
            b.observe(key);
        }
    }
    a.merge(&b);
    let (m, w) = (a.estimate() as f64, whole.estimate() as f64);
    // Same randomness, same retained-set semantics: the merged estimate
    // must be close to the single-stream estimate (levels can round
    // differently, so allow the ε-band around truth for both).
    assert!((m - 30_000.0).abs() <= 0.15 * 30_000.0, "merged {m}");
    assert!((w - 30_000.0).abs() <= 0.15 * 30_000.0, "whole {w}");
}

#[test]
fn countmin_merge_adds_counts() {
    let mut rng = StdRng::seed_from_u64(2);
    let proto = CountMin::new(64, 4, &mut rng);
    let mut a = proto.clone();
    let mut b = proto.clone();
    for k in 0..50u64 {
        a.add(k, k + 1);
        b.add(k, 2 * (k + 1));
    }
    a.merge(&b);
    for k in 0..50u64 {
        assert!(a.query(k) >= 3 * (k + 1), "key {k}");
    }
    assert_eq!(a.total(), 3 * (50 * 51 / 2));
}

#[test]
#[should_panic(expected = "share randomness")]
fn countmin_merge_rejects_foreign_sketch() {
    let mut a = CountMin::new(64, 4, &mut StdRng::seed_from_u64(3));
    let b = CountMin::new(64, 4, &mut StdRng::seed_from_u64(4));
    a.merge(&b);
}

#[test]
fn sparse_recovery_merge_with_cross_shard_cancellation() {
    let mut rng = StdRng::seed_from_u64(5);
    let proto = SparseRecovery::new(6, 6, &mut rng);
    let mut a = proto.clone();
    let mut b = proto.clone();
    a.update(10, 5);
    a.update(20, 3);
    b.update(10, -5); // deletion arrives on the other shard
    b.update(30, 7);
    a.merge(&b);
    assert_eq!(a.decode(), Some(vec![(20, 3), (30, 7)]));
}

#[test]
fn one_sparse_merge_linearity() {
    let mut a = OneSparseRecovery::with_point(777);
    let mut b = OneSparseRecovery::with_point(777);
    for i in 0..10 {
        a.update(42, i);
        b.update(42, 10 - i);
    }
    a.merge(&b);
    assert_eq!(
        a.decode(),
        hindex_sketch::Recovery::One { index: 42, value: 100 }
    );
}

#[test]
fn l0_sampler_merge_sees_both_shards() {
    let mut found_a_side = false;
    let mut found_b_side = false;
    for trial in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(trial + 100);
        let proto = L0Sampler::with_defaults(&mut rng);
        let mut a = proto.clone();
        let mut b = proto.clone();
        for i in 0..20u64 {
            a.update(i, 1);
            b.update(1000 + i, 1);
        }
        a.merge(&b);
        match a.sample() {
            Some((i, 1)) if i < 20 => found_a_side = true,
            Some((i, 1)) if i >= 1000 => found_b_side = true,
            Some(other) => panic!("bad sample {other:?}"),
            None => {}
        }
    }
    assert!(found_a_side && found_b_side, "merge lost a shard");
}

#[test]
fn cash_register_sharded_equals_single_stream() {
    let corpus = hindex_stream::generator::planted_h_corpus(25, 80, 9);
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.25).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let proto = CashRegisterHIndex::new(params, &mut rng);

    let updates = Unaggregator::default().stream(&corpus, &mut rng);
    // Single-stream reference.
    let mut whole = proto.clone();
    for u in &updates {
        whole.update(u.paper.0, u.delta);
    }
    // Four shards, round-robin.
    let mut shards: Vec<CashRegisterHIndex> = (0..4).map(|_| proto.clone()).collect();
    for (i, u) in updates.iter().enumerate() {
        shards[i % 4].update(u.paper.0, u.delta);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    // Linear sketches: identical randomness + same total updates ⇒
    // identical internal state ⇒ identical estimates and samples.
    assert_eq!(merged.estimate(), whole.estimate());
    assert_eq!(merged.draw_samples(), whole.draw_samples());
}
