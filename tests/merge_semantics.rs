//! Merge semantics: every linear sketch must satisfy
//! `merge(sketch(A), sketch(B)) ≡ sketch(A ++ B)` — the property that
//! makes the paper's algorithms usable over sharded/distributed
//! streams.

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_sketch::distinct::DistinctCounter;
use hindex_sketch::{Bjkst, CountMin, L0Sampler, OneSparseRecovery, SparseRecovery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn exponential_histogram_merge_equals_concat() {
    let eps = Epsilon::new(0.15).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let a_vals: Vec<u64> = (0..5_000).map(|_| rng.random_range(0..10_000)).collect();
    let b_vals: Vec<u64> = (0..3_000).map(|_| rng.random_range(0..500)).collect();

    let mut a = ExponentialHistogram::new(eps);
    let mut b = ExponentialHistogram::new(eps);
    a.extend_from(a_vals.iter().copied());
    b.extend_from(b_vals.iter().copied());
    a.merge(&b);

    let mut whole = ExponentialHistogram::new(eps);
    whole.extend_from(a_vals.iter().copied().chain(b_vals.iter().copied()));

    assert_eq!(a.estimate(), whole.estimate());
    assert_eq!(a.counters(), whole.counters());
}

#[test]
fn exponential_histogram_merge_asymmetric_levels() {
    // One shard saw only tiny values, the other only huge ones: the
    // merged level vector must cover the union.
    let eps = Epsilon::new(0.3).unwrap();
    let mut small = ExponentialHistogram::new(eps);
    let mut big = ExponentialHistogram::new(eps);
    small.extend_from([1u64, 2, 3]);
    big.extend_from([1_000_000u64; 5]);
    let mut merged_sb = small.clone();
    merged_sb.merge(&big);
    let mut merged_bs = big.clone();
    merged_bs.merge(&small);
    assert_eq!(merged_sb.counters(), merged_bs.counters());
}

#[test]
fn bjkst_merge_equals_concat_estimate() {
    let mut rng = StdRng::seed_from_u64(1);
    let proto = Bjkst::new(0.1, 0.01, &mut rng);

    let mut a = proto.clone();
    let mut b = proto.clone();
    let mut whole = proto.clone();
    for i in 0..30_000u64 {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        whole.observe(key);
        if i % 2 == 0 {
            a.observe(key);
        } else {
            b.observe(key);
        }
        // Overlap: both shards see some common keys.
        if i % 10 == 0 {
            a.observe(key);
            b.observe(key);
        }
    }
    a.merge(&b);
    let (m, w) = (a.estimate() as f64, whole.estimate() as f64);
    // Same randomness, same retained-set semantics: the merged estimate
    // must be close to the single-stream estimate (levels can round
    // differently, so allow the ε-band around truth for both).
    assert!((m - 30_000.0).abs() <= 0.15 * 30_000.0, "merged {m}");
    assert!((w - 30_000.0).abs() <= 0.15 * 30_000.0, "whole {w}");
}

#[test]
fn countmin_merge_adds_counts() {
    let mut rng = StdRng::seed_from_u64(2);
    let proto = CountMin::new(64, 4, &mut rng);
    let mut a = proto.clone();
    let mut b = proto.clone();
    for k in 0..50u64 {
        a.add(k, k + 1);
        b.add(k, 2 * (k + 1));
    }
    a.merge(&b);
    for k in 0..50u64 {
        assert!(a.query(k) >= 3 * (k + 1), "key {k}");
    }
    assert_eq!(a.total(), 3 * (50 * 51 / 2));
}

#[test]
#[should_panic(expected = "share randomness")]
fn countmin_merge_rejects_foreign_sketch() {
    let mut a = CountMin::new(64, 4, &mut StdRng::seed_from_u64(3));
    let b = CountMin::new(64, 4, &mut StdRng::seed_from_u64(4));
    a.merge(&b);
}

#[test]
fn sparse_recovery_merge_with_cross_shard_cancellation() {
    let mut rng = StdRng::seed_from_u64(5);
    let proto = SparseRecovery::new(6, 6, &mut rng);
    let mut a = proto.clone();
    let mut b = proto.clone();
    a.update(10, 5);
    a.update(20, 3);
    b.update(10, -5); // deletion arrives on the other shard
    b.update(30, 7);
    a.merge(&b);
    assert_eq!(a.decode(), Some(vec![(20, 3), (30, 7)]));
}

#[test]
fn one_sparse_merge_linearity() {
    let mut a = OneSparseRecovery::with_point(777);
    let mut b = OneSparseRecovery::with_point(777);
    for i in 0..10 {
        a.update(42, i);
        b.update(42, 10 - i);
    }
    a.merge(&b);
    assert_eq!(
        a.decode(),
        hindex_sketch::Recovery::One { index: 42, value: 100 }
    );
}

#[test]
fn l0_sampler_merge_sees_both_shards() {
    let mut found_a_side = false;
    let mut found_b_side = false;
    for trial in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(trial + 100);
        let proto = L0Sampler::with_defaults(&mut rng);
        let mut a = proto.clone();
        let mut b = proto.clone();
        for i in 0..20u64 {
            a.update(i, 1);
            b.update(1000 + i, 1);
        }
        a.merge(&b);
        match a.sample() {
            Some((i, 1)) if i < 20 => found_a_side = true,
            Some((i, 1)) if i >= 1000 => found_b_side = true,
            Some(other) => panic!("bad sample {other:?}"),
            None => {}
        }
    }
    assert!(found_a_side && found_b_side, "merge lost a shard");
}

/// Folds shard states left-to-right through the [`Mergeable`] trait —
/// the same code path the engine uses, usable here for any estimator.
fn merge_shards<E: Mergeable>(mut shards: Vec<E>) -> E {
    let mut acc = shards.remove(0);
    for s in &shards {
        acc.merge(s);
    }
    acc
}

#[test]
fn turnstile_sharded_equals_single_stream_with_deletions() {
    // Deletions land on a *different* shard than the insertions they
    // cancel; linearity still makes the merged state identical to the
    // single-stream state.
    let mut rng = StdRng::seed_from_u64(21);
    let proto = TurnstileHIndex::with_sampler_count(
        Epsilon::new(0.4).unwrap(),
        Delta::new(0.3).unwrap(),
        27,
        &mut rng,
    );
    let mut updates: Vec<(u64, i64)> = (0..2_000u64).map(|i| (i % 120, 3)).collect();
    updates.extend((0..60u64).map(|p| (p, -3))); // retractions
    let mut whole = proto.clone();
    let mut shards: Vec<TurnstileHIndex> = (0..3).map(|_| proto.clone()).collect();
    for (k, &(i, d)) in updates.iter().enumerate() {
        whole.update(i, d);
        shards[k % 3].update(i, d);
    }
    let merged = merge_shards(shards);
    assert_eq!(merged.estimate(), whole.estimate());
}

#[test]
#[should_panic(expected = "config mismatch")]
fn turnstile_merge_rejects_mismatched_geometry() {
    let mut rng = StdRng::seed_from_u64(22);
    let eps = Epsilon::new(0.4).unwrap();
    let delta = Delta::new(0.3).unwrap();
    let mut a = TurnstileHIndex::with_sampler_count(eps, delta, 9, &mut rng);
    let b = TurnstileHIndex::with_sampler_count(eps, delta, 11, &mut rng);
    a.merge(&b);
}

#[test]
fn heavy_hitters_sharded_decode_finds_planted_authors() {
    // Algorithm 8 is built from linear counters plus per-level author
    // reservoirs, so merged shards answer like one detector: the
    // planted heavy authors must survive a 2-way shard split.
    let corpus = hindex_stream::generator::planted_heavy_hitters(&[80, 60], 60, 4, 2, 1);
    let truth = corpus.ground_truth();
    let expected = truth.heavy_hitters(0.2);
    assert!(!expected.is_empty());
    let mut found = 0;
    let trials = 8;
    for seed in 0..trials {
        let params = HeavyHittersParams::new(
            Epsilon::new(0.2).unwrap(),
            Delta::new(0.05).unwrap(),
        );
        let proto = HeavyHitters::new(params, &mut StdRng::seed_from_u64(seed));
        let mut shards = vec![proto.clone(), proto];
        for (k, p) in corpus.papers().iter().enumerate() {
            shards[k % 2].push(p);
        }
        let merged = merge_shards(shards);
        let out = merged.decode();
        if expected.iter().all(|&(a, _)| out.iter().any(|c| c.author == a)) {
            found += 1;
        }
    }
    assert!(found >= trials - 2, "full recall in only {found}/{trials} merged runs");
}

#[test]
#[should_panic(expected = "hash randomness")]
fn heavy_hitters_merge_rejects_foreign_randomness() {
    let params = HeavyHittersParams::new(
        Epsilon::new(0.25).unwrap(),
        Delta::new(0.1).unwrap(),
    );
    let mut a = HeavyHitters::new(params, &mut StdRng::seed_from_u64(1));
    let b = HeavyHitters::new(params, &mut StdRng::seed_from_u64(2));
    a.merge(&b);
}

#[test]
fn g_index_sharded_equals_single_stream() {
    let eps = Epsilon::new(0.2).unwrap();
    let values: Vec<u64> = (0..4_000u64).map(|i| (i * 13) % 900 + 1).collect();
    let mut whole = StreamingGIndex::new(eps);
    let mut shards: Vec<StreamingGIndex> = (0..4).map(|_| StreamingGIndex::new(eps)).collect();
    for (k, &v) in values.iter().enumerate() {
        whole.ingest(v);
        shards[k % 4].ingest(v);
    }
    let merged = merge_shards(shards);
    assert_eq!(merged.estimate(), whole.estimate());
}

#[test]
fn cash_register_sharded_equals_single_stream() {
    let corpus = hindex_stream::generator::planted_h_corpus(25, 80, 9);
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.25).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let proto = CashRegisterHIndex::new(params, &mut rng);

    let updates = Unaggregator::default().stream(&corpus, &mut rng);
    // Single-stream reference.
    let mut whole = proto.clone();
    for u in &updates {
        whole.ingest(u.paper.0, u.delta);
    }
    // Four shards, round-robin.
    let mut shards: Vec<CashRegisterHIndex> = (0..4).map(|_| proto.clone()).collect();
    for (i, u) in updates.iter().enumerate() {
        shards[i % 4].ingest(u.paper.0, u.delta);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    // Linear sketches: identical randomness + same total updates ⇒
    // identical internal state ⇒ identical estimates and samples.
    assert_eq!(merged.estimate(), whole.estimate());
    assert_eq!(merged.draw_samples(), whole.draw_samples());
}

/// The hot-path kernels (windowed power ladders, term-sharing, batched
/// hashing) promise **bit-identical** states to the legacy
/// square-and-multiply path: same seeds in, same field elements out.
/// Drive one sketch through the ladder-backed scalar path, one through
/// the batched path, and one through per-update `mersenne_pow` (the
/// pre-kernel computation), then compare full states, decodes, and
/// cross-path merges.
#[test]
fn kernel_paths_bit_identical_to_legacy_square_and_multiply() {
    use hindex_hashing::mersenne_pow;

    let proto = SparseRecovery::new(6, 6, &mut StdRng::seed_from_u64(4242));
    let point = proto.ladder().base();
    // ≤ 6 distinct coordinates (decodable at s = 6), hit repeatedly
    // with mixed-sign deltas so fingerprints see real cancellation.
    let updates: Vec<(u64, i64)> = (0..64u64)
        .map(|k| ((k % 6) * 977 + 3, (k % 11) as i64 - 5))
        .filter(|&(_, d)| d != 0)
        .collect();

    let mut ladder = proto.clone();
    let mut batched = proto.clone();
    let mut legacy = proto.clone();
    for &(i, d) in &updates {
        ladder.update(i, d);
        legacy.update_with_power(i, d, mersenne_pow(point, i));
    }
    batched.update_batch(&updates);

    // Full-state equality (grid cells, checksum, fingerprints): the
    // Debug rendering exposes every field element.
    let legacy_state = format!("{legacy:?}");
    assert_eq!(format!("{ladder:?}"), legacy_state);
    assert_eq!(format!("{batched:?}"), legacy_state);

    // Merging across paths is exact: each side carried the same state,
    // so any pairing doubles every coordinate identically.
    let mut ladder_merged = ladder.clone();
    ladder_merged.merge(&legacy);
    let mut legacy_merged = legacy.clone();
    legacy_merged.merge(&batched);
    assert_eq!(format!("{ladder_merged:?}"), format!("{legacy_merged:?}"));

    // And the decodes agree (merge-doubled values included).
    assert_eq!(ladder.decode(), legacy.decode());
    assert_eq!(ladder_merged.decode(), legacy_merged.decode());
    assert!(legacy.decode().is_some(), "decode failed on ≤ 6-sparse input");
}

#[test]
fn cash_table_merge_equals_concatenation_exactly() {
    // The exact baseline is deterministic and order-insensitive, so a
    // sharded run must agree with the single stream on *every* exposed
    // quantity, not just within tolerance.
    let updates: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k % 173, 1 + k % 5)).collect();
    let mut whole = CashTable::new();
    let mut shards: Vec<CashTable> = (0..3).map(|_| CashTable::new()).collect();
    for (k, &(i, d)) in updates.iter().enumerate() {
        whole.ingest(i, d);
        shards[k % 3].ingest(i, d);
    }
    let merged = merge_shards(shards);
    assert_eq!(merged.estimate(), whole.estimate());
    assert_eq!(merged.distinct(), whole.distinct());
    for paper in 0..173u64 {
        assert_eq!(merged.count(paper), whole.count(paper), "paper {paper}");
    }
}

#[test]
fn one_heavy_hitter_merge_preserves_dominant_author() {
    // Algorithm 7's histogram merges exactly; the per-level reservoirs
    // merge distributionally. A planted dominant author must therefore
    // survive a 2-way shard split in (nearly) every seeded run.
    let corpus = hindex_stream::generator::planted_heavy_hitters(&[90], 10, 2, 2, 5);
    let truth_h = corpus.ground_truth().per_author[&AuthorId(0)];
    let trials = 8;
    let mut found = 0;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let proto = OneHeavyHitter::new(Epsilon::new(0.2).unwrap(), 0.05, &mut rng);
        let mut shards = vec![proto.clone(), proto];
        for (k, p) in corpus.papers().iter().enumerate() {
            shards[k % 2].push(p);
        }
        let merged = merge_shards(shards);
        if let OneHeavyHitterOutcome::Author { author, h_estimate } = merged.decode() {
            assert_eq!(author, AuthorId(0));
            assert!(h_estimate <= truth_h, "estimate {h_estimate} above truth {truth_h}");
            if h_estimate as f64 >= 0.7 * truth_h as f64 {
                found += 1;
            }
        }
    }
    assert!(found >= trials - 2, "dominant author survived only {found}/{trials} merges");
}

#[test]
#[should_panic(expected = "share epsilon")]
fn one_heavy_hitter_merge_rejects_mismatched_epsilon() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut a = OneHeavyHitter::new(Epsilon::new(0.2).unwrap(), 0.05, &mut rng);
    let b = OneHeavyHitter::new(Epsilon::new(0.4).unwrap(), 0.05, &mut rng);
    a.merge(&b);
}

/// Same contract one level down: a 1-sparse cell updated via a shared
/// ladder's powers matches one recomputing `rⁱ` per update.
#[test]
fn one_sparse_ladder_updates_match_internal_pow() {
    use hindex_hashing::PowerLadder;

    let point = 987_654_321u64;
    let ladder = PowerLadder::new(point);
    let mut via_ladder = OneSparseRecovery::with_point(point);
    let mut via_pow = OneSparseRecovery::with_point(point);
    for i in 0..200u64 {
        let (idx, d) = (i * 31 % 1000, (i % 5) as i64 - 2);
        via_ladder.update_with_power(idx, d, ladder.pow(idx));
        via_pow.update(idx, d);
    }
    assert_eq!(format!("{via_ladder:?}"), format!("{via_pow:?}"));
    assert_eq!(via_ladder.decode(), via_pow.decode());
}
