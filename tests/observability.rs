//! Determinism contract of the observability layer.
//!
//! The obs crate promises that, for a fixed input stream and seed,
//! (a) every counter, gauge, and derived statistic in a
//! [`MetricsSnapshot`] is identical across runs, (b) the event trace —
//! logical timestamps, kinds, shard labels, values — is identical
//! across runs, and (c) attaching an observer never perturbs the
//! estimator: the instrumented engine's merged state is bit-identical
//! to the plain engine's (checked via `state_digest()` when the
//! `debug_invariants` feature is armed, and via the estimate always).
//! Wall-clock durations live only in latency histograms, which these
//! tests deliberately never compare.

use hindex::prelude::*;
use hindex_obs::MetricsSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn prototype(seed: u64) -> CashRegisterHIndex {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(seed))
}

/// One full instrumented run: ingest in two batches, query once,
/// checkpoint once, finish. Returns the metrics snapshot and the
/// final estimate.
fn instrumented_run(updates: &[(u64, u64)], seed: u64) -> (MetricsSnapshot, u64) {
    let observer = Arc::new(EngineObserver::new(3));
    let config = EngineConfig::builder()
        .shards(3)
        .batch(32)
        .observer(Arc::clone(&observer))
        .build()
        .unwrap();
    let mut engine = ShardedEngine::new(config, prototype(seed));
    let cut = updates.len() / 2;
    engine.ingest_batch(&updates[..cut]);
    engine.ingest_batch(&updates[cut..]);
    let _ = engine.query().unwrap();
    let _ = engine.checkpoint().unwrap();
    let estimate = engine.finish().unwrap().estimate();
    (observer.snapshot(), estimate)
}

/// The deterministic projection of a snapshot: everything except the
/// wall-clock latency histograms.
fn deterministic_view(s: &MetricsSnapshot) -> (Vec<u64>, Vec<Vec<u64>>, Vec<Event>, String) {
    (
        vec![
            s.items,
            s.push_batches,
            s.flushes,
            s.merges,
            s.degraded_queries,
            s.checkpoints,
            s.restores,
            s.batch_h_index,
            s.batch_max,
            s.batch_mean,
            s.events_recorded,
            // Supervision counters: zero on a plain engine, and equal
            // across identical seeded supervised runs.
            s.shard_panics,
            s.restarts,
            s.replayed_batches,
            s.micro_checkpoints,
            s.replay_overflows,
            s.batches_lost,
            s.items_lost,
            s.faults_injected,
        ],
        vec![
            s.per_shard_items.clone(),
            s.queue_depths.clone(),
            s.queue_depth_peaks.clone(),
        ],
        s.events.clone(),
        format!("{:.6}|{:.6}", s.routing_skew, s.full_batch_rate),
    )
}

fn stream(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|k| ((k * 13) % 170, 1 + k % 2)).collect()
}

#[test]
fn identical_seeded_runs_have_identical_metrics_and_traces() {
    let updates = stream(2_000);
    let (a, ha) = instrumented_run(&updates, 42);
    let (b, hb) = instrumented_run(&updates, 42);
    assert_eq!(ha, hb);
    assert_eq!(deterministic_view(&a), deterministic_view(&b));
    // The trace is non-trivial and carries logical time only.
    assert!(a.events_recorded > 0);
    let seqs: Vec<u64> = a.events.iter().map(|e| e.seq).collect();
    let sorted = {
        let mut s = seqs.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(seqs, sorted, "events must be recorded in sequence order");
}

#[test]
fn bank_counters_flow_from_estimator_to_observer() {
    // The Alg 6 bank kernel's telemetry must survive the whole relay:
    // estimator accumulation → shard merge at query → engine
    // `on_bank_batch` → observer snapshot + `BankBatch` trace event.
    let updates = stream(2_000);
    let (snap, _) = instrumented_run(&updates, 7);
    let bank = snap.bank;
    assert!(bank.tiles > 0, "no tiles reported: {bank:?}");
    // Every coalesced item passed through exactly one tile; raw
    // updates count the pre-coalescing stream.
    assert_eq!(bank.raw_updates, updates.len() as u64);
    assert!(bank.tile_items <= bank.raw_updates);
    assert!(bank.tile_items <= bank.tile_capacity);
    assert!(bank.level_touches > 0);
    // Term sharing covers the whole bank: x−1 reuses per evaluation.
    assert!(bank.pow_evals > 0);
    assert_eq!(bank.pow_reused % bank.pow_evals, 0);
    assert!(snap.bank_tile_fill() > 0.0 && snap.bank_tile_fill() <= 1.0);
    assert!(snap.bank_hash_reuse() > 0.9, "{}", snap.bank_hash_reuse());
    assert!(snap
        .events
        .iter()
        .any(|e| e.kind == hindex_obs::EventKind::BankBatch));
    assert!(snap.render_text().contains("hindex_bank_tiles_total"));
}

#[test]
fn observer_never_perturbs_the_estimator() {
    let updates = stream(3_000);
    let plain_config = EngineConfig::builder().shards(3).batch(32).build().unwrap();
    let mut plain = ShardedEngine::new(plain_config, prototype(7));
    plain.ingest_batch(&updates);
    let plain_final = plain.finish().unwrap();

    let observed_config = EngineConfig::builder()
        .shards(3)
        .batch(32)
        .observer(Arc::new(EngineObserver::new(3)))
        .build()
        .unwrap();
    let mut observed = ShardedEngine::new(observed_config, prototype(7));
    observed.ingest_batch(&updates);
    let observed_final = observed.finish().unwrap();

    assert_eq!(plain_final.estimate(), observed_final.estimate());
    #[cfg(feature = "debug_invariants")]
    assert_eq!(
        plain_final.state_digest(),
        observed_final.state_digest(),
        "instrumentation must be bit-invisible to estimator state"
    );
}

#[test]
fn snapshot_counts_match_the_workload() {
    let updates = stream(1_000);
    let (snap, _) = instrumented_run(&updates, 3);
    assert_eq!(snap.shards, 3);
    assert_eq!(snap.items, 1_000);
    assert_eq!(snap.per_shard_items.iter().sum::<u64>(), 1_000);
    assert_eq!(snap.push_batches, 2);
    assert_eq!(snap.merges, 1); // one query; finish()'s merge is untraced
    assert_eq!(snap.checkpoints, 1);
    assert_eq!(snap.degraded_queries, 0);
    assert!(snap.routing_skew >= 1.0);
    assert!(snap.batch_max <= 32);
    let text = snap.render_text();
    assert!(text.contains("hindex_engine_items_total 1000"), "{text}");
    assert!(text.contains("hindex_engine_checkpoints_total 1"), "{text}");
}

#[test]
fn query_report_is_consistent_with_the_snapshot() {
    let updates = stream(1_200);
    let observer = Arc::new(EngineObserver::new(2));
    let config = EngineConfig::builder()
        .shards(2)
        .batch(64)
        .observer(Arc::clone(&observer))
        .build()
        .unwrap();
    let mut engine = ShardedEngine::new(config, prototype(11));
    engine.ingest_batch(&updates);
    let report = engine.report(None).unwrap();
    assert!(report.degraded.is_empty());
    assert!(report.space_words > 0);
    let obs = report.obs.as_ref().expect("instrumented engine must attach obs");
    assert_eq!(obs.items, 1_200);
    assert_eq!(report.estimate, engine.query().unwrap().estimate());
}

#[test]
fn builder_rejects_mis_sized_observer_and_zero_geometry() {
    let err = EngineConfig::builder()
        .shards(4)
        .observer(Arc::new(EngineObserver::new(2)))
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    assert!(EngineConfig::builder().shards(0).build().is_err());
    assert!(EngineConfig::builder().batch(0).build().is_err());
    assert!(EngineConfig::builder().queue_depth(0).build().is_err());
}

#[test]
fn restore_is_traced_and_checkpoint_strips_the_observer() {
    let updates = stream(600);
    let observer = Arc::new(EngineObserver::new(2));
    let config = EngineConfig::builder()
        .shards(2)
        .batch(16)
        .observer(Arc::clone(&observer))
        .build()
        .unwrap();
    let mut engine = ShardedEngine::new(config, prototype(5));
    engine.ingest_batch(&updates);
    let checkpoint = engine.checkpoint().unwrap();
    engine.finish().unwrap();

    // Round-trip through bytes: the decoded checkpoint carries no
    // observer, and a fresh one can be re-attached for the resumed run.
    let bytes = hindex_common::snapshot::Snapshot::to_bytes(&checkpoint);
    let (decoded, _) =
        <EngineCheckpoint<CashRegisterHIndex> as hindex_common::snapshot::Snapshot>::read_from(
            &bytes,
        )
        .unwrap();
    assert!(decoded.config().observer().is_none());

    let resumed_obs = Arc::new(EngineObserver::new(2));
    let mut resumed =
        ShardedEngine::restore(decoded.with_observer(Arc::clone(&resumed_obs))).unwrap();
    resumed.ingest_batch(&updates);
    resumed.finish().unwrap();
    let snap = resumed_obs.snapshot();
    assert_eq!(snap.restores, 1);
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Restore));
    assert_eq!(snap.items, 600);
}

// Regression: `send()` used to fire `on_flush` *before* the channel
// handoff, so a batch aimed at a dead shard was counted as flushed and
// then silently dropped. Delivery accounting must now be exhaustive:
// every routed item is either flushed exactly once or counted lost.
#[test]
fn lost_batches_are_counted_lost_not_flushed() {
    let updates = stream(2_000);
    let observer = Arc::new(EngineObserver::new(2));
    let config = EngineConfig::builder()
        .shards(2)
        .batch(32)
        .observer(Arc::clone(&observer))
        .build()
        .unwrap();
    // No restart budget: the injected kill is terminal, and everything
    // routed to the dead shard afterwards must be counted lost.
    let sup = SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() };
    let plan = FaultPlan::parse("kill@500:1", 2, 2_000).unwrap();
    let mut engine = SupervisedEngine::with_faults(config, sup, plan, prototype(3)).unwrap();
    engine.ingest_batch(&updates);
    engine.flush();
    let degraded = engine.finish_degraded().unwrap();
    assert_eq!(degraded.dead_shards, vec![1]);
    let snap = observer.snapshot();
    assert!(snap.items_lost > 0, "the dead shard must lose items");
    assert_eq!(
        snap.items + snap.items_lost,
        2_000,
        "flushed + lost must cover the whole stream exactly once: {snap:?}"
    );
    assert!(snap.events.iter().any(|e| e.kind == EventKind::BatchLost));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::ShardPanicked));
    assert!(snap.render_text().contains("hindex_engine_items_lost_total"));
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

    /// Property form of the determinism contract: for arbitrary update
    /// streams, two identical instrumented runs agree on every counter
    /// and the full event sequence, and the instrumented estimate
    /// matches an uninstrumented serial ingest of the same stream.
    #[test]
    fn metrics_and_traces_are_reproducible(
        updates in proptest::collection::vec((0u64..120, 1u64..4), 1..400),
        seed in 0u64..32,
    ) {
        let (a, ha) = instrumented_run(&updates, seed);
        let (b, hb) = instrumented_run(&updates, seed);
        proptest::prop_assert_eq!(ha, hb);
        proptest::prop_assert_eq!(deterministic_view(&a), deterministic_view(&b));

        let mut serial = prototype(seed);
        for &(p, d) in &updates {
            serial.ingest(p, d);
        }
        proptest::prop_assert_eq!(ha, serial.estimate());
    }
}
