//! The read plane's contract, end to end.
//!
//! Three guarantees, checked against a serial single-threaded
//! reference:
//!
//! 1. **Bit-identity.** Every view a reader can observe is the *exact*
//!    serial prefix of the stream at the view's recorded offset — same
//!    [`Snapshot`] frame digest — however many shards, whatever the
//!    batch size or publish cadence.
//! 2. **No torn views, monotone epochs.** Concurrent readers on cloned
//!    [`ReadHandle`]s never see a half-merged state and never see the
//!    epoch go backwards, even while ingestion and publishing run at
//!    full speed.
//! 3. **Honest staleness.** `QueryReport::epoch`/`staleness` from a
//!    handle report exactly how far the stream has moved past the
//!    answering view.

use hindex::baseline::CashTable;
use hindex::prelude::*;
use hindex_common::snapshot::Snapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn stream(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|k| ((k * 13) % 170, 1 + k % 2)).collect()
}

/// Frame digest of a serial (single-threaded, unsharded) run over
/// every prefix of `updates`: `out[k]` is the digest after exactly `k`
/// items. The exact table's canonical serialisation makes this the
/// reference any shard-merged state must hit bit for bit.
fn prefix_digests(updates: &[(u64, u64)]) -> Vec<u64> {
    let mut table = CashTable::new();
    let mut out = Vec::with_capacity(updates.len() + 1);
    out.push(table.frame_digest());
    for &(p, d) in updates {
        table.ingest(p, d);
        out.push(table.frame_digest());
    }
    out
}

fn config(shards: usize, batch: usize, publish_interval: u64) -> EngineConfig {
    EngineConfig::builder()
        .shards(shards)
        .batch(batch)
        .publish_interval(publish_interval)
        .build()
        .unwrap()
}

#[test]
fn concurrent_readers_observe_only_exact_serial_prefixes() {
    let updates = stream(4_000);
    let prefixes = Arc::new(prefix_digests(&updates));
    let mut engine = ShardedEngine::new(config(3, 16, 128), CashTable::new());
    let handle = engine.read_handle().expect("publish_interval set");
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let (h, s, prefixes) = (handle.clone(), Arc::clone(&stop), Arc::clone(&prefixes));
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                while !s.load(Ordering::Relaxed) {
                    if let Some(view) = h.query() {
                        assert!(
                            view.epoch() >= last_epoch,
                            "epoch regressed: {} after {last_epoch}",
                            view.epoch()
                        );
                        last_epoch = view.epoch();
                        let offset = view.offset() as usize;
                        assert_eq!(
                            view.estimator().frame_digest(),
                            prefixes[offset],
                            "view at offset {offset} is not the exact serial prefix"
                        );
                        observed += 1;
                    }
                    std::thread::yield_now();
                }
                (observed, last_epoch)
            })
        })
        .collect();

    engine.ingest_batch(&updates);
    let final_epoch = engine.publish_now().expect("engine has a read plane");
    assert!(handle.wait_for_epoch(final_epoch, 10_000), "final publish never completed");
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let (observed, last_epoch) = reader.join().unwrap();
        assert!(observed > 0, "reader never saw a view");
        assert_eq!(last_epoch, final_epoch, "reader stopped before the final view");
    }

    // The forced final view covers the whole stream, with no staleness,
    // and matches the strict synchronous merge bit for bit.
    let view = handle.query().unwrap();
    assert_eq!(view.offset(), updates.len() as u64);
    assert_eq!(view.staleness(), 0);
    assert_eq!(view.estimator().frame_digest(), *prefixes.last().unwrap());
    let merged = engine.finish().unwrap();
    assert_eq!(merged.frame_digest(), *prefixes.last().unwrap());
}

#[test]
fn handle_reports_epoch_and_staleness_honestly() {
    let updates = stream(1_000);
    // Interval far past the stream: only explicit publishes fire.
    let mut engine = ShardedEngine::new(config(2, 16, 1 << 40), CashTable::new());
    let handle = engine.read_handle().unwrap();
    assert!(handle.query().is_none(), "no view before the first publish");
    assert!(handle.report(None).is_none());

    engine.ingest_batch(&updates[..600]);
    let epoch = engine.publish_now().unwrap();
    assert!(handle.wait_for_epoch(epoch, 5_000));
    let report = handle.report(None).unwrap();
    assert_eq!(report.epoch, Some(epoch));
    assert_eq!(report.staleness, 0);
    assert_eq!(report.estimate, {
        let mut t = CashTable::new();
        for &(p, d) in &updates[..600] {
            t.ingest(p, d);
        }
        t.estimate()
    });

    // The stream moves on without a publish: the answering view stays
    // pinned at its epoch and the report says exactly how far behind.
    engine.ingest_batch(&updates[600..]);
    engine.flush();
    let report = handle.report(None).unwrap();
    assert_eq!(report.epoch, Some(epoch));
    assert_eq!(report.staleness, 400);
    assert_eq!(handle.stream_offset(), 1_000);
    engine.finish().unwrap();
}

#[test]
fn read_handle_outlives_the_engine() {
    let updates = stream(500);
    let mut engine = ShardedEngine::new(config(2, 16, 100), CashTable::new());
    let handle = engine.read_handle().unwrap();
    engine.ingest_batch(&updates);
    let epoch = engine.publish_now().unwrap();
    assert!(handle.wait_for_epoch(epoch, 5_000));
    let serial = prefix_digests(&updates);
    drop(engine.finish().unwrap());
    // The cell is shared by `Arc`: retired engines leave the last
    // published view queryable.
    let view = handle.query().unwrap();
    assert_eq!(view.offset(), 500);
    assert_eq!(view.estimator().frame_digest(), *serial.last().unwrap());
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// For ANY geometry (shards × batch × cadence): every view
    /// observable mid-stream is an exact serial prefix, epochs are
    /// monotone, staleness is exact, and the forced final view covers
    /// the whole stream.
    #[test]
    fn any_geometry_publishes_exact_prefixes(
        shards in 1usize..5,
        batch in 1usize..40,
        interval in 1u64..400,
        n in 100u64..1200,
    ) {
        let updates = stream(n);
        let prefixes = prefix_digests(&updates);
        let mut engine = ShardedEngine::new(config(shards, batch, interval), CashTable::new());
        let handle = engine.read_handle().unwrap();
        let mut last_epoch = 0u64;
        for chunk in updates.chunks(97) {
            engine.ingest_batch(chunk);
            if let Some(view) = handle.query() {
                proptest::prop_assert!(view.epoch() >= last_epoch, "epoch regressed");
                last_epoch = view.epoch();
                let offset = view.offset() as usize;
                proptest::prop_assert_eq!(
                    view.estimator().frame_digest(),
                    prefixes[offset],
                    "torn or stale-offset view at offset {}", offset
                );
                proptest::prop_assert_eq!(
                    view.staleness(),
                    handle.stream_offset() - view.offset()
                );
            }
        }
        let epoch = engine.publish_now().unwrap();
        proptest::prop_assert!(handle.wait_for_epoch(epoch, 10_000));
        let view = handle.query().unwrap();
        proptest::prop_assert!(view.epoch() >= last_epoch);
        proptest::prop_assert_eq!(view.offset(), n);
        proptest::prop_assert_eq!(view.estimator().frame_digest(), *prefixes.last().unwrap());
        engine.finish().unwrap();
    }
}
