//! Snapshot contracts for every persistable type in the workspace:
//!
//! 1. **Round-trip** — `read_from(to_bytes(x))` succeeds, consumes the
//!    whole frame, and re-encodes to the *identical* byte string;
//!    observable behaviour (estimates, decodes, digests) survives.
//! 2. **Corruption totality** — truncations, bit flips, hostile length
//!    prefixes, wrong tags, and future versions all produce a typed
//!    [`SnapshotError`], never a panic and never an unbounded
//!    allocation.
//!
//! Lint L6 (`SnapshotCoverage`) checks that every `Mergeable`
//! implementor appears here by name: `CashTable`,
//! `ExponentialHistogram`, `OneHeavyHitter`, `HeavyHitters`,
//! `TurnstileHIndex`, `StreamingGIndex`, `CashRegisterHIndex`.

use hindex::prelude::*;
use hindex_baseline::{CashTable, FullStore};
use hindex_common::snapshot::{Snapshot, SnapshotError};
use hindex_common::ExpGrid;
use hindex_common::Estimate;
use hindex_hashing::{PairwiseHash, PolynomialHash, PowerLadder, TabulationHash};
use hindex_sketch::{
    Bjkst, Dgim, DistinctCounter, Kmv, L0Norm, L0Sampler, OneSparseRecovery, SparseRecovery,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Round-trips one value and checks the canonical-encoding law.
fn roundtrip<S: Snapshot>(name: &str, value: &S) -> S {
    let bytes = value.to_bytes();
    let (decoded, used) =
        S::read_from(&bytes).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert_eq!(used, bytes.len(), "{name}: decode did not consume the frame");
    assert_eq!(decoded.to_bytes(), bytes, "{name}: re-encode differs");
    decoded
}

/// A type-erased decoder so the corruption sweep can run over every
/// implementor with one loop.
type Decoder = Box<dyn Fn(&[u8]) -> Result<(), SnapshotError>>;

fn case<S: Snapshot + 'static>(name: &'static str, value: &S) -> (&'static str, Vec<u8>, Decoder) {
    (
        name,
        value.to_bytes(),
        Box::new(|bytes| S::read_from(bytes).map(|_| ())),
    )
}

fn sample_papers() -> Vec<Paper> {
    hindex_stream::generator::planted_heavy_hitters(&[80, 60], 60, 4, 2, 1)
        .papers()
        .to_vec()
}

/// One populated instance of every `Snapshot` implementor.
fn all_cases() -> Vec<(&'static str, Vec<u8>, Decoder)> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let eps = Epsilon::new(0.25).unwrap();
    let delta = Delta::new(0.1).unwrap();
    let papers = sample_papers();

    // Hashing seeds.
    let mut cases = vec![
        case("pairwise_hash", &PairwiseHash::new(&mut rng)),
        case("polynomial_hash", &PolynomialHash::new(5, &mut rng)),
        case("tabulation_hash", &TabulationHash::new(&mut rng)),
        case("power_ladder", &PowerLadder::new(987_654_321)),
        case("exp_grid", &ExpGrid::new(0.25)),
    ];

    // Sketches.
    let mut one_sparse = OneSparseRecovery::new(&mut rng);
    for i in 0..40u64 {
        one_sparse.update(i % 7, (i % 5) as i64 - 2);
    }
    cases.push(case("one_sparse", &one_sparse));

    let mut sparse = SparseRecovery::new(5, 4, &mut rng);
    sparse.update(10, 5);
    sparse.update(20, -3);
    sparse.update(30, 7);
    cases.push(case("sparse_recovery", &sparse));

    let mut l0 = L0Sampler::with_defaults(&mut rng);
    for i in 0..200u64 {
        l0.update(i * 31 % 997, 1);
    }
    cases.push(case("l0_sampler", &l0));

    let mut norm = L0Norm::new(0.3, 0.2, &mut rng);
    for i in 0..300u64 {
        norm.update(i % 90, if i % 9 == 0 { -1 } else { 1 });
    }
    cases.push(case("l0_norm", &norm));

    let mut bjkst = Bjkst::new(0.2, 0.1, &mut rng);
    let mut kmv = Kmv::new(32, &mut rng);
    for i in 0..500u64 {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        bjkst.observe(key);
        kmv.observe(key);
    }
    cases.push(case("bjkst", &bjkst));
    cases.push(case("kmv", &kmv));

    let mut dgim = Dgim::new(128, 2);
    for i in 0..400u64 {
        dgim.push(i % 3 != 0);
    }
    cases.push(case("dgim", &dgim));

    // Paper algorithms (all seven `Mergeable` implementors).
    let mut hist = ExponentialHistogram::new(eps);
    hist.extend_from((0..2_000u64).map(|i| (i * 13) % 900));
    cases.push(case("exponential_histogram", &hist));

    let params = CashRegisterParams::Additive { epsilon: eps, delta };
    let mut cash = CashRegisterHIndex::new(params, &mut rng);
    for i in 0..1_500u64 {
        cash.ingest(i % 200, 1 + i % 3);
    }
    cases.push(case("cash_register_h_index", &cash));

    let mut turnstile = TurnstileHIndex::with_sampler_count(eps, delta, 9, &mut rng);
    for i in 0..800u64 {
        turnstile.update(i % 120, 2);
    }
    for p in 0..30u64 {
        turnstile.update(p, -2);
    }
    cases.push(case("turnstile_h_index", &turnstile));

    let mut one_hh = OneHeavyHitter::new(eps, 0.05, &mut rng);
    let hh_params = HeavyHittersParams::new(eps, delta);
    let mut hh = HeavyHitters::new(hh_params, &mut rng);
    for p in &papers {
        one_hh.push(p);
        hh.push(p);
    }
    cases.push(case("one_heavy_hitter", &one_hh));
    cases.push(case("heavy_hitters", &hh));

    let mut g_index = StreamingGIndex::new(eps);
    for v in (0..1_000u64).map(|i| (i * 7) % 400 + 1) {
        g_index.ingest(v);
    }
    cases.push(case("streaming_g_index", &g_index));

    // Baselines.
    let mut table = CashTable::new();
    for i in 0..600u64 {
        table.ingest(i % 97, 1 + i % 4);
    }
    cases.push(case("cash_table", &table));

    let mut store = FullStore::new();
    store.extend_from((0..200u64).map(|i| i % 50));
    cases.push(case("full_store", &store));

    // Engine checkpoint (nested frames all the way down).
    let config = EngineConfig::builder().shards(3).batch(16).build().unwrap();
    let mut engine = ShardedEngine::new(config, CashTable::new());
    let updates: Vec<(u64, u64)> = (0..300u64).map(|k| (k % 40, 1)).collect();
    engine.ingest_batch(&updates);
    let checkpoint = engine.checkpoint().expect("no shard died");
    engine.finish().expect("clean finish");
    cases.push(case("engine_checkpoint", &checkpoint));

    cases
}

#[test]
fn every_snapshot_implementor_roundtrips_canonically() {
    // `case()` already encodes; this re-runs the full round-trip law
    // (decode succeeds, frame fully consumed, re-encode identical) via
    // the type-erased decoder plus the byte-equality check in `case`.
    for (name, bytes, decode) in all_cases() {
        decode(&bytes).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    }
}

#[test]
fn roundtrip_preserves_estimates_and_decodes() {
    let mut rng = StdRng::seed_from_u64(7);
    let eps = Epsilon::new(0.25).unwrap();
    let delta = Delta::new(0.1).unwrap();

    let params = CashRegisterParams::Additive { epsilon: eps, delta };
    let mut cash = CashRegisterHIndex::new(params, &mut rng);
    for i in 0..2_000u64 {
        cash.ingest(i % 150, 1);
    }
    let cash2 = roundtrip("cash_register_h_index", &cash);
    assert_eq!(cash2.estimate(), cash.estimate());
    assert_eq!(cash2.draw_samples(), cash.draw_samples());

    let mut turnstile =
        TurnstileHIndex::with_sampler_count(eps, delta, 11, &mut rng);
    for i in 0..900u64 {
        turnstile.update(i % 80, 3);
    }
    let turnstile2 = roundtrip("turnstile_h_index", &turnstile);
    assert_eq!(turnstile2.estimate(), turnstile.estimate());

    let mut hist = ExponentialHistogram::new(eps);
    hist.extend_from((0..3_000u64).map(|i| i % 777));
    let hist2 = roundtrip("exponential_histogram", &hist);
    assert_eq!(hist2.estimate(), hist.estimate());
    assert_eq!(hist2.counters(), hist.counters());

    let mut g_index = StreamingGIndex::new(eps);
    for v in 1..=500u64 {
        g_index.ingest(v);
    }
    let g2 = roundtrip("streaming_g_index", &g_index);
    assert_eq!(g2.estimate(), g_index.estimate());

    let hh_params = HeavyHittersParams::new(eps, delta);
    let mut hh = HeavyHitters::new(hh_params, &mut rng);
    let mut one_hh = OneHeavyHitter::new(eps, 0.05, &mut rng);
    for p in &sample_papers() {
        hh.push(p);
        one_hh.push(p);
    }
    let hh2 = roundtrip("heavy_hitters", &hh);
    assert_eq!(hh2.decode(), hh.decode());
    let one_hh2 = roundtrip("one_heavy_hitter", &one_hh);
    assert_eq!(one_hh2.decode(), one_hh.decode());

    let mut table = CashTable::new();
    for i in 0..400u64 {
        table.ingest(i % 61, 1 + i % 5);
    }
    let table2 = roundtrip("cash_table", &table);
    assert_eq!(table2.estimate(), table.estimate());
    assert_eq!(table2.distinct(), table.distinct());
    for paper in 0..61u64 {
        assert_eq!(table2.count(paper), table.count(paper), "paper {paper}");
    }
}

/// The restored sketch is not just observably equal — under the
/// invariant layer its full internal state digest matches bit for bit.
#[cfg(feature = "debug_invariants")]
#[test]
fn roundtrip_preserves_state_digests() {
    let mut rng = StdRng::seed_from_u64(11);
    let eps = Epsilon::new(0.3).unwrap();
    let delta = Delta::new(0.2).unwrap();

    let mut l0 = L0Sampler::with_defaults(&mut rng);
    let mut norm = L0Norm::new(0.3, 0.2, &mut rng);
    let mut sparse = SparseRecovery::new(6, 6, &mut rng);
    let mut bjkst = Bjkst::new(0.2, 0.1, &mut rng);
    for i in 0..400u64 {
        l0.update(i % 70, 1);
        norm.update(i % 70, 1);
        sparse.update(i % 6, 1);
        bjkst.observe(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    assert_eq!(roundtrip("l0_sampler", &l0).state_digest(), l0.state_digest());
    assert_eq!(roundtrip("l0_norm", &norm).state_digest(), norm.state_digest());
    assert_eq!(roundtrip("sparse", &sparse).state_digest(), sparse.state_digest());
    assert_eq!(roundtrip("bjkst", &bjkst).state_digest(), bjkst.state_digest());

    let params = CashRegisterParams::Additive { epsilon: eps, delta };
    let mut cash = CashRegisterHIndex::new(params, &mut rng);
    let mut turnstile = TurnstileHIndex::with_sampler_count(eps, delta, 9, &mut rng);
    for i in 0..600u64 {
        cash.ingest(i % 90, 1);
        turnstile.ingest(i % 90, 1);
    }
    assert_eq!(
        roundtrip("cash_register_h_index", &cash).state_digest(),
        cash.state_digest()
    );
    assert_eq!(
        roundtrip("turnstile_h_index", &turnstile).state_digest(),
        turnstile.state_digest()
    );
}

#[test]
fn empty_estimators_roundtrip() {
    let mut rng = StdRng::seed_from_u64(3);
    let eps = Epsilon::new(0.2).unwrap();
    let delta = Delta::new(0.1).unwrap();
    roundtrip("empty_cash_table", &CashTable::new());
    roundtrip("empty_full_store", &FullStore::new());
    roundtrip("empty_exp_hist", &ExponentialHistogram::new(eps));
    roundtrip("empty_g_index", &StreamingGIndex::new(eps));
    roundtrip("empty_dgim", &Dgim::new(64, 2));
    roundtrip("empty_one_sparse", &OneSparseRecovery::new(&mut rng));
    roundtrip("empty_l0", &L0Sampler::with_defaults(&mut rng));
    roundtrip(
        "empty_turnstile",
        &TurnstileHIndex::with_sampler_count(eps, delta, 5, &mut rng),
    );
    let params = CashRegisterParams::Additive { epsilon: eps, delta };
    roundtrip("empty_cash_register", &CashRegisterHIndex::new(params, &mut rng));
}

#[test]
fn truncation_always_a_typed_error_never_a_panic() {
    for (name, bytes, decode) in all_cases() {
        // Every proper prefix must fail cleanly — including the empty
        // one and cuts inside the header, the payload, and the trailer.
        let step = (bytes.len() / 97).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "{name}: truncation to {cut}/{} decoded successfully",
                bytes.len()
            );
        }
    }
}

#[test]
fn bit_flips_always_detected() {
    for (name, bytes, decode) in all_cases() {
        // Flip one bit per probed byte; the FNV trailer (or an earlier
        // structural check) must catch every one of them.
        let step = (bytes.len() / 131).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(
                decode(&corrupt).is_err(),
                "{name}: flipped bit at byte {pos} went unnoticed"
            );
        }
    }
}

#[test]
fn hostile_length_prefix_rejected_without_allocation() {
    for (name, bytes, decode) in all_cases() {
        // Bytes 6..14 hold the little-endian payload length. A claim of
        // ~2^64 must be rejected up front (Truncated), not trusted by a
        // `Vec::with_capacity` somewhere downstream.
        let mut hostile = bytes.clone();
        for b in &mut hostile[6..14] {
            *b = 0xFF;
        }
        assert!(decode(&hostile).is_err(), "{name}: hostile length accepted");
    }
}

#[test]
fn foreign_frames_and_future_versions_rejected() {
    let mut store = FullStore::new();
    store.ingest(42);
    let bytes = store.to_bytes();

    // Another implementor's frame: tag mismatch, typed error.
    match CashTable::read_from(&bytes) {
        Err(SnapshotError::WrongTag { .. }) => {}
        other => panic!("expected WrongTag, got {other:?}"),
    }

    // A frame from a future format version.
    let mut future = bytes.clone();
    future[4] = future[4].wrapping_add(1);
    assert!(FullStore::read_from(&future).is_err(), "future version accepted");

    // Garbage magic.
    let mut garbage = bytes;
    garbage[0] = b'X';
    match FullStore::read_from(&garbage) {
        Err(SnapshotError::BadMagic | SnapshotError::ChecksumMismatch) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }

    // Arbitrary junk that is not even a header.
    assert!(FullStore::read_from(&[0u8; 5]).is_err());
    assert!(FullStore::read_from(&[]).is_err());
}

proptest::proptest! {
    #[test]
    fn prop_cash_table_roundtrips(
        updates in proptest::collection::vec((0u64..80, 1u64..9), 0..200),
    ) {
        let mut table = CashTable::new();
        for &(p, d) in &updates {
            table.ingest(p, d);
        }
        let back = roundtrip("cash_table", &table);
        proptest::prop_assert_eq!(back.estimate(), table.estimate());
        proptest::prop_assert_eq!(back.distinct(), table.distinct());
    }

    #[test]
    fn prop_full_store_roundtrips(
        values in proptest::collection::vec(0u64..1_000, 0..200),
    ) {
        let mut store = FullStore::new();
        store.extend_from(values.iter().copied());
        let back = roundtrip("full_store", &store);
        proptest::prop_assert_eq!(back.values(), store.values());
    }

    #[test]
    fn prop_exponential_histogram_roundtrips(
        values in proptest::collection::vec(0u64..100_000, 0..300),
    ) {
        let mut hist = ExponentialHistogram::new(Epsilon::new(0.2).unwrap());
        hist.extend_from(values.iter().copied());
        let back = roundtrip("exponential_histogram", &hist);
        proptest::prop_assert_eq!(back.estimate(), hist.estimate());
        proptest::prop_assert_eq!(back.counters(), hist.counters());
    }

    #[test]
    fn prop_dgim_roundtrips(bits in proptest::collection::vec(0u8..2, 0..500)) {
        let mut dgim = Dgim::new(100, 2);
        for &b in &bits {
            dgim.push(b == 1);
        }
        let back = roundtrip("dgim", &dgim);
        proptest::prop_assert_eq!(back.count(), dgim.count());
        proptest::prop_assert_eq!(back.time(), dgim.time());
    }

    #[test]
    fn prop_bjkst_roundtrips(seed in 0u64..64, n in 0u64..2_000) {
        let mut bjkst = Bjkst::new(0.2, 0.1, &mut StdRng::seed_from_u64(seed));
        for i in 0..n {
            bjkst.observe(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let back = roundtrip("bjkst", &bjkst);
        proptest::prop_assert_eq!(back.estimate(), bjkst.estimate());
    }

    #[test]
    fn prop_random_junk_never_decodes_to_ok_silently(
        junk in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // Random byte strings essentially never carry a valid FNV
        // trailer; the decoder must reject them with a typed error (and
        // in particular must not panic on any of them).
        proptest::prop_assert!(CashTable::read_from(&junk).is_err());
        proptest::prop_assert!(CashRegisterHIndex::read_from(&junk).is_err());
    }
}
