//! Adversarial and pathological inputs against every estimator.
//!
//! The deterministic algorithms must survive *any* input; the
//! randomized ones must survive any input *distribution* (their
//! randomness is internal). These tests throw the worst shapes we know
//! at each.

use hindex::prelude::*;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eps(e: f64) -> Epsilon {
    Epsilon::new(e).unwrap()
}

fn assert_sandwich(name: &str, values: &[u64], e: f64) {
    let truth = h_index(values);
    let mut hist = ExponentialHistogram::new(eps(e));
    let mut win = ShiftingWindow::new(eps(e));
    hist.extend_from(values.iter().copied());
    win.extend_from(values.iter().copied());
    for (alg, got) in [("hist", hist.estimate()), ("window", win.estimate())] {
        assert!(got <= truth, "{name}/{alg}: over ({got} > {truth})");
        assert!(
            got as f64 >= (1.0 - e) * truth as f64,
            "{name}/{alg}: under ({got} < (1-{e})·{truth})"
        );
    }
}

#[test]
fn single_element_streams() {
    for v in [0u64, 1, 2, u64::MAX] {
        assert_sandwich("single", &[v], 0.1);
    }
}

#[test]
fn all_identical_values() {
    for v in [1u64, 7, 1_000_000] {
        for n in [1usize, 10, 1000] {
            assert_sandwich("identical", &vec![v; n], 0.15);
        }
    }
}

#[test]
fn extreme_values_mixed_with_zeros() {
    let mut values = vec![u64::MAX; 100];
    values.extend(vec![0u64; 10_000]);
    assert_sandwich("max-and-zero", &values, 0.1);
}

#[test]
fn sawtooth_and_alternating() {
    let sawtooth: Vec<u64> = (0..5000u64).map(|i| i % 100).collect();
    assert_sandwich("sawtooth", &sawtooth, 0.1);
    let alternating: Vec<u64> = (0..5000u64).map(|i| if i % 2 == 0 { 1 } else { 1_000 }).collect();
    assert_sandwich("alternating", &alternating, 0.1);
}

#[test]
fn h_exactly_on_grid_boundaries() {
    // Plant h* at integer grid thresholds of the ε = 0.25 grid (the
    // exact values where ceil/level arithmetic is touchiest).
    let e = 0.25;
    let grid = hindex_common::ExpGrid::new(e);
    for level in 3..20u32 {
        let h = grid.int_threshold(level);
        let corpus = hindex_stream::generator::planted_h_corpus(h, (3 * h) as usize, level as u64);
        assert_sandwich("grid-boundary", &corpus.citation_counts(), e);
    }
}

#[test]
fn off_by_one_around_thresholds() {
    // h*, h*±1 around a few grid points: the estimate must track within
    // the band for each.
    let e = 0.2;
    for base in [47u64, 100, 333] {
        for h in [base - 1, base, base + 1] {
            let corpus = hindex_stream::generator::planted_h_corpus(h, (2 * h) as usize, h);
            assert_sandwich("off-by-one", &corpus.citation_counts(), e);
        }
    }
}

#[test]
fn shifting_window_survives_bursts_of_giants() {
    // Giant values interleaved with dust — repeatedly forces the
    // shifting cascade through many levels at once.
    let mut values = Vec::new();
    for round in 1..=50u64 {
        values.extend(vec![round * 1_000_000; 20]);
        values.extend(vec![1u64; 100]);
    }
    assert_sandwich("giant-bursts", &values, 0.1);
}

#[test]
fn streaming_g_index_pathologies() {
    use hindex_common::variants::g_index;
    // One enormous value (g capped by n), then many tiny ones.
    let mut values = vec![1_000_000u64];
    values.extend(vec![1u64; 500]);
    let truth = g_index(&values);
    let mut est = StreamingGIndex::new(eps(0.1));
    est.extend_from(values.iter().copied());
    let got = est.estimate();
    assert!(got <= truth);
    assert!(got as f64 >= 0.7 * truth as f64, "got {got} truth {truth}");
}

#[test]
fn cash_register_adversarial_update_orders() {
    // The same multiset of updates in three hostile orders: per-paper
    // contiguous, round-robin, and strictly interleaved by delta size.
    let params = CashRegisterParams::Additive {
        epsilon: eps(0.25),
        delta: Delta::new(0.1).unwrap(),
    };
    let n_papers = 40u64;
    let per_paper = 30u64; // h* = 30... all papers get 30 → h = 40? #≥40 = 0... h = 30.
    let make_updates = |order: u8| -> Vec<(u64, u64)> {
        let mut u = Vec::new();
        match order {
            0 => {
                for p in 0..n_papers {
                    for _ in 0..per_paper {
                        u.push((p, 1));
                    }
                }
            }
            1 => {
                for _ in 0..per_paper {
                    for p in 0..n_papers {
                        u.push((p, 1));
                    }
                }
            }
            _ => {
                for p in 0..n_papers {
                    u.push((p, per_paper)); // one burst each
                }
            }
        }
        u
    };
    let truth = {
        let values = vec![per_paper; n_papers as usize];
        h_index(&values)
    };
    for order in 0..3u8 {
        let mut ok = 0;
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut est = CashRegisterHIndex::new(params, &mut rng);
            for &(p, d) in &make_updates(order) {
                est.ingest(p, d);
            }
            let got = est.estimate();
            if (got as f64 - truth as f64).abs() <= 0.25 * n_papers as f64 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "order {order}: only {ok}/5 within bound");
    }
}

#[test]
fn heavy_hitters_with_zero_citation_flood() {
    // An author publishing a flood of never-cited papers must not be
    // reported, and must not crowd out the real heavy hitter.
    let mut corpus = Corpus::new();
    for i in 0..60u64 {
        corpus.push(Paper::solo(i, 0, 80)); // the real one, h = 60
    }
    for i in 60..5060u64 {
        corpus.push(Paper::solo(i, 1, 0)); // the flooder
    }
    let mut rng = StdRng::seed_from_u64(3);
    let mut hh = HeavyHitters::new(
        HeavyHittersParams::new(eps(0.2), Delta::new(0.1).unwrap()),
        &mut rng,
    );
    for p in corpus.papers() {
        hh.push(p);
    }
    let out = hh.decode();
    assert!(out.iter().any(|c| c.author == AuthorId(0)), "real HH missed");
    assert!(
        out.iter().all(|c| c.author != AuthorId(1)),
        "zero-citation flooder reported"
    );
}

#[test]
fn sliding_window_adversarial_expiry_boundary() {
    // Impact placed exactly at the expiry edge: estimates must fall
    // once (and only once) the support leaves the window.
    let w = 100u64;
    let mut est = SlidingHIndex::new(eps(0.2), w, 0.05);
    for _ in 0..100 {
        est.ingest(500);
    }
    assert!(est.estimate() >= 70);
    // 99 junk items: one support element still inside the window.
    for _ in 0..99 {
        est.ingest(0);
    }
    let nearly = est.estimate();
    assert!(nearly <= 5, "stale impact lingers: {nearly}");
    est.ingest(0);
    assert_eq!(est.estimate(), 0);
}

#[test]
fn estimators_never_panic_on_fuzzed_inputs() {
    // Quick fuzz: byte-derived values through every aggregate estimator.
    let mut rng = StdRng::seed_from_u64(4);
    for case in 0..50u64 {
        use rand::Rng as _;
        let len = rng.random_range(0..300);
        let values: Vec<u64> = (0..len)
            .map(|_| {
                let shape: u8 = rng.random_range(0..4);
                match shape {
                    0 => rng.random_range(0..10),
                    1 => rng.random_range(0..1_000_000),
                    2 => u64::from(u32::MAX),
                    _ => 1u64 << rng.random_range(0..60),
                }
            })
            .collect();
        let mut hist = ExponentialHistogram::new(eps(0.3));
        let mut win = ShiftingWindow::new(eps(0.3));
        let mut g = StreamingGIndex::new(eps(0.3));
        let mut a = StreamingAlphaIndex::new(eps(0.3), 2.5);
        let mut s = SlidingHIndex::new(eps(0.3), 64, 0.1);
        for &v in &values {
            hist.ingest(v);
            win.ingest(v);
            g.ingest(v);
            a.ingest(v);
            s.ingest(v);
        }
        // Touch every estimate and space path.
        let _ = (
            hist.estimate(),
            win.estimate(),
            g.estimate(),
            a.estimate(),
            s.estimate(),
            hist.space_words() + win.space_words() + s.space_words(),
            case,
        );
    }
}

/// Regression: 1-sparse accumulators at the representable extremes.
/// `ℓ` and `z` accumulate `δ` and `δ·i` in wrapping `i128`; before the
/// wrapping fix, a handful of `i64::MIN`-weight updates at a huge index
/// overflowed `z` and aborted in debug builds. The sums are exact mod
/// 2¹²⁸, so cancellation must walk the cell back to the empty state bit
/// for bit — and intermediate, non-representable states must decode
/// gracefully rather than panic.
#[test]
fn one_sparse_survives_extreme_index_and_delta() {
    use hindex_sketch::one_sparse::MAX_INDEX;
    use hindex_sketch::{OneSparseRecovery, Recovery};
    let empty = OneSparseRecovery::with_point(123_456_789);
    let mut cell = empty;
    // |δ·i| ≈ 2⁶³·2⁶¹ = 2¹²⁴ per update: 16 of them push Σ δ·i past
    // i128 range (pre-fix: overflow abort in debug builds).
    for _ in 0..16 {
        cell.update(MAX_INDEX, i64::MIN);
        let _ = cell.decode(); // mid-flight decode must not abort either
    }
    // 2 × 2⁶² cancels one −2⁶³, so 32 of them cancel all 16 MINs.
    for _ in 0..32 {
        cell.update(MAX_INDEX, 1i64 << 62);
    }
    assert_eq!(cell.decode(), Recovery::Zero);
    // And a decodable extreme: one live coordinate at the top index.
    cell.update(MAX_INDEX, i64::MAX);
    assert_eq!(
        cell.decode(),
        Recovery::One { index: MAX_INDEX, value: i64::MAX }
    );
}

/// Regression: the turnstile batch path coalesces per-paper deltas in
/// `i128` and clamps to `i64` — `i64::MIN` (whose negation overflows
/// `i64`) and saturating mixes around it must match the serial
/// one-update-at-a-time path exactly, including the internal field
/// state when the invariant layer is armed.
#[test]
fn turnstile_batch_coalescing_handles_i64_min() {
    let proto = TurnstileHIndex::with_sampler_count(
        Epsilon::new(0.4).unwrap(),
        Delta::new(0.3).unwrap(),
        9,
        &mut StdRng::seed_from_u64(55),
    );
    let updates: Vec<(u64, i64)> = vec![
        (5, i64::MIN),
        (7, 3),
        (5, i64::MIN), // coalesced sum −2⁶⁴: overflows i64, exact in i128
        (5, i64::MAX),
        (9, -1),
        (5, i64::MAX), // net −2 on paper 5
        (9, 1),        // exact cancellation inside one batch
    ];
    let mut serial = proto.clone();
    for &(i, d) in &updates {
        TurnstileEstimator::ingest(&mut serial, i, d);
    }
    let mut batched = proto.clone();
    batched.ingest_batch(&updates);
    assert_eq!(batched.estimate(), serial.estimate());
    #[cfg(feature = "debug_invariants")]
    assert_eq!(batched.state_digest(), serial.state_digest());
}

/// The Alg 6 bank kernel (tile → one hash pass per substrate →
/// survivor-only level dispatch) promises bit-identical sampler state
/// to the scalar path. Hit the tile boundaries around the 256-item
/// tile and the top of the index domain in the same batches.
#[test]
fn cash_register_bank_tiles_at_boundaries_and_max_index() {
    use hindex_sketch::one_sparse::MAX_INDEX;
    let params = CashRegisterParams::Additive {
        epsilon: eps(0.3),
        delta: Delta::new(0.2).unwrap(),
    };
    for size in [1usize, 255, 256, 257, 700] {
        // Distinct indices (so coalescing is the identity and the tile
        // count is driven by `size`), every 7th at the domain ceiling.
        let updates: Vec<(u64, u64)> = (0..size as u64)
            .map(|i| {
                let p = if i % 7 == 0 { MAX_INDEX - i } else { i * 977 + 1 };
                (p, i % 5 + 1)
            })
            .collect();
        let mut scalar = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(77));
        let mut batched = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(77));
        for &(p, d) in &updates {
            scalar.ingest(p, d);
        }
        batched.ingest_batch(&updates);
        assert_eq!(batched.estimate(), scalar.estimate(), "size {size}");
        #[cfg(feature = "debug_invariants")]
        assert_eq!(batched.state_digest(), scalar.state_digest(), "size {size}");
    }
}

/// Sharding the bank path across engine workers and merging back must
/// land on the serial stream's exact state: the samplers are linear
/// over the exact field, so the fan-out is invisible in the digest.
#[test]
fn cash_register_engine_sharded_state_matches_serial() {
    use hindex_engine::{EngineConfig, ShardedEngine};
    let params = CashRegisterParams::Additive {
        epsilon: eps(0.3),
        delta: Delta::new(0.2).unwrap(),
    };
    let proto = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(5));
    let updates: Vec<(u64, u64)> = (0..2000u64).map(|i| (i % 331, i % 7 + 1)).collect();
    let mut serial = proto.clone();
    serial.ingest_batch(&updates);
    let config = EngineConfig::builder()
        .shards(4)
        .batch(64)
        .build()
        .unwrap();
    let mut engine = ShardedEngine::new(config, proto);
    engine.ingest_batch(&updates);
    let merged = engine.finish().unwrap();
    assert_eq!(merged.estimate(), serial.estimate());
    #[cfg(feature = "debug_invariants")]
    assert_eq!(merged.state_digest(), serial.state_digest());
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Any update multiset, any chunking: the bank batch path must
    /// reproduce the scalar path's sampler state exactly.
    #[test]
    fn prop_bank_batch_bit_identical_to_scalar(
        updates in proptest::collection::vec((0u64..100_000, 1u64..50), 1..300),
        chunk in 1usize..300,
        seed in 0u64..8,
    ) {
        let params = CashRegisterParams::Additive {
            epsilon: eps(0.3),
            delta: Delta::new(0.2).unwrap(),
        };
        let mut scalar = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(seed));
        let mut batched = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(seed));
        for &(p, d) in &updates {
            scalar.ingest(p, d);
        }
        for c in updates.chunks(chunk) {
            batched.ingest_batch(c);
        }
        proptest::prop_assert_eq!(batched.estimate(), scalar.estimate());
        #[cfg(feature = "debug_invariants")]
        proptest::prop_assert_eq!(batched.state_digest(), scalar.state_digest());
    }
}

/// Regression: field helpers at the domain extremes. `from_i64` must
/// embed `i64::MIN` correctly (its magnitude is not representable as a
/// positive `i64`), and products of residues next to `p − 1` must stay
/// canonical — the weights adversarial retraction streams produce.
#[test]
fn field_helpers_at_extremes() {
    use hindex_hashing::{from_i64, is_canonical, mersenne_mul, mersenne_pow, MERSENNE_P};
    assert_eq!(from_i64(i64::MIN), MERSENNE_P - 4); // −2⁶³ ≡ −4 (mod 2⁶¹−1)
    assert_eq!(from_i64(i64::MAX), 3); // 2⁶³ − 1 ≡ 4 − 1
    for x in [MERSENNE_P - 1, MERSENNE_P - 2, 1, 2] {
        for y in [MERSENNE_P - 1, MERSENNE_P - 2] {
            let prod = mersenne_mul(x, y);
            assert!(is_canonical(prod), "mul({x}, {y}) = {prod} left the field");
        }
    }
    // (p−1)² ≡ 1: the top residue is its own inverse.
    assert_eq!(mersenne_mul(MERSENNE_P - 1, MERSENNE_P - 1), 1);
    assert_eq!(mersenne_pow(MERSENNE_P - 1, u64::MAX % 2), MERSENNE_P - 1);
}
