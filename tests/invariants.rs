//! Property tests that run with the `debug_invariants` feature armed:
//! every push/merge below executes the internal assertion layer (field
//! canonicality, 1-sparse consistency, grid consistency, bucket
//! monotonicity), so a property that *passes* here certifies both the
//! observable contract and the internal invariants along the way.
//!
//! Compiled only under `--features debug_invariants`; `scripts/check.sh`
//! runs it as a dedicated stage.
#![cfg(feature = "debug_invariants")]

use hindex::prelude::*;
use hindex_sketch::{OneSparseRecovery, SparseRecovery};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest::proptest! {
    /// Algorithm 1's level counters are non-increasing in the level —
    /// the bucket-monotonicity invariant asserted inside every `push`
    /// and visible through `counters()`.
    #[test]
    fn eh_bucket_monotonicity(
        values in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let mut eh = ExponentialHistogram::new(Epsilon::new(0.15).unwrap());
        for &v in &values {
            eh.ingest(v);
        }
        let counters = eh.counters();
        for pair in counters.windows(2) {
            proptest::prop_assert!(pair[0] >= pair[1], "counters not monotone: {counters:?}");
        }
    }

    /// Merging a fresh clone of the prototype is the additive identity:
    /// shard-merge idempotence at the bit level. This is exactly what
    /// the engine relies on for shards that received no batches.
    #[test]
    fn turnstile_merge_with_fresh_clone_is_identity(
        updates in proptest::collection::vec((0u64..150, -6i64..6), 0..250),
    ) {
        let proto = TurnstileHIndex::with_sampler_count(
            Epsilon::new(0.4).unwrap(),
            Delta::new(0.3).unwrap(),
            9,
            &mut StdRng::seed_from_u64(31),
        );
        let mut state = proto.clone();
        for &(i, d) in &updates {
            TurnstileEstimator::ingest(&mut state, i, d);
        }
        let before = state.state_digest();
        state.merge(&proto);
        proptest::prop_assert_eq!(state.state_digest(), before);
    }

    /// Merge is bitwise commutative for the linear turnstile stack —
    /// the property that makes the engine's merge order irrelevant.
    #[test]
    fn turnstile_merge_is_bitwise_commutative(
        updates in proptest::collection::vec((0u64..100, -5i64..5), 1..200),
        split in 0usize..200,
    ) {
        let proto = TurnstileHIndex::with_sampler_count(
            Epsilon::new(0.4).unwrap(),
            Delta::new(0.3).unwrap(),
            9,
            &mut StdRng::seed_from_u64(32),
        );
        let cut = split % updates.len();
        let mut a = proto.clone();
        let mut b = proto.clone();
        for &(i, d) in &updates[..cut] {
            TurnstileEstimator::ingest(&mut a, i, d);
        }
        for &(i, d) in &updates[cut..] {
            TurnstileEstimator::ingest(&mut b, i, d);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        proptest::prop_assert_eq!(ab.state_digest(), ba.state_digest());
    }

    /// Sparse recovery: a split stream merged back is bit-identical to
    /// the serial stream, and both decode to the same support. Every
    /// update and the merge run the grid-consistency assertions.
    #[test]
    fn sparse_recovery_split_merge_bit_identical(
        updates in proptest::collection::vec((0u64..40, -4i64..4), 0..120),
        parity in proptest::collection::vec(proptest::bool::ANY, 0..120),
    ) {
        let proto = SparseRecovery::new(5, 6, &mut StdRng::seed_from_u64(33));
        let mut whole = proto.clone();
        let mut left = proto.clone();
        let mut right = proto.clone();
        for (k, &(i, d)) in updates.iter().enumerate() {
            if d == 0 {
                continue;
            }
            whole.update(i, d);
            if *parity.get(k).unwrap_or(&false) {
                left.update(i, d);
            } else {
                right.update(i, d);
            }
        }
        left.merge(&right);
        proptest::prop_assert_eq!(left.state_digest(), whole.state_digest());
        proptest::prop_assert_eq!(left.decode(), whole.decode());
    }

    /// 1-sparse cells stay canonical and linear under cancellation:
    /// pushing a stream and its negation returns the cell to the empty
    /// state, bit for bit (the fingerprint invariant fires on every
    /// update along the way).
    #[test]
    fn one_sparse_cancellation_returns_to_zero_state(
        updates in proptest::collection::vec((0u64..1_000, 1i64..1_000), 1..60),
    ) {
        let empty = OneSparseRecovery::with_point(987_654_321);
        let mut cell = empty;
        for &(i, d) in &updates {
            cell.update(i, d);
        }
        for &(i, d) in &updates {
            cell.update(i, -d);
        }
        proptest::prop_assert_eq!(cell.state_digest(), empty.state_digest());
        proptest::prop_assert_eq!(cell.decode(), hindex_sketch::Recovery::Zero);
    }
}
