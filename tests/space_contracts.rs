//! Cross-crate checks that measured space (in words) respects each
//! theorem's bound — the quantitative heart of the paper.

use hindex::prelude::*;
use hindex_common::SpaceUsage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem 5: `≤ 2 ε⁻¹ ln n` words (values and count both ≤ n).
#[test]
fn theorem_5_space_bound() {
    for (eps, n) in [(0.1, 10_000u64), (0.2, 100_000), (0.5, 1_000_000)] {
        let mut est = ExponentialHistogram::new(Epsilon::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(n);
        for _ in 0..n.min(200_000) {
            est.ingest(rng.random_range(0..=n));
        }
        let bound = 2.0 / eps * (n as f64).ln() + 2.0;
        assert!(
            (est.space_words() as f64) <= bound,
            "eps {eps} n {n}: {} > {bound}",
            est.space_words()
        );
    }
}

/// Theorem 6: `O(ε⁻¹ log ε⁻¹)` words, *independent of n*.
#[test]
fn theorem_6_space_independent_of_n() {
    for eps in [0.05, 0.1, 0.3] {
        let words_of = |n: u64| {
            let mut est = ShiftingWindow::new(Epsilon::new(eps).unwrap());
            let mut rng = StdRng::seed_from_u64(n);
            for _ in 0..n {
                est.ingest(rng.random_range(0..u64::from(u32::MAX)));
            }
            est.space_words()
        };
        let small = words_of(1_000);
        let big = words_of(100_000);
        assert_eq!(small, big, "eps {eps}: window width changed with n");
        let bound = 6.0 / eps * (3.0 / eps).log2() + 8.0;
        assert!((big as f64) <= bound, "eps {eps}: {big} > {bound}");
    }
}

/// Theorem 9: the large-regime branch is exactly six words; total space
/// is six words plus a window whose counters are bounded by β.
#[test]
fn theorem_9_constant_space() {
    let params = RandomOrderParams::new(
        Epsilon::new(0.2).unwrap(),
        Delta::new(0.05).unwrap(),
        1_000_000_000,
    );
    let mut est = RandomOrderEstimator::new(params);
    let before = est.space_words();
    let mut rng = StdRng::seed_from_u64(0);
    for _ in 0..100_000u64 {
        est.ingest(rng.random_range(0..1_000_000));
    }
    // Space never grows with the stream.
    assert_eq!(est.space_words(), before);
}

/// Theorem 14: sampler count (and hence space) is
/// `poly(1/ε, log(1/δ))`, independent of the stream length.
#[test]
fn theorem_14_space_stream_independent() {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let mut rng = StdRng::seed_from_u64(1);
    let mut est = CashRegisterHIndex::new(params, &mut rng);
    let empty_words = est.space_words();
    for i in 0..20_000u64 {
        est.ingest(i % 500, 1);
    }
    let full_words = est.space_words();
    // Linear sketches: size fixed at construction up to the BJKST
    // buffers, which are capped by 1/ε² per copy.
    assert!(
        full_words <= empty_words + 100_000,
        "cash sketch grew unboundedly: {empty_words} → {full_words}"
    );

    // Sampler count formula.
    assert_eq!(
        params.num_samplers(),
        (3.0 / (0.3 * 0.3) * (2.0f64 / 0.1).ln()).ceil() as usize
    );
}

/// Theorem 17: Algorithm 7 keeps `O(levels · s)` sampled author lists
/// and one counter per level — logarithmic in the citation range.
#[test]
fn theorem_17_space_logarithmic() {
    let corpus = hindex_stream::generator::planted_heavy_hitters(&[50], 50, 10, 9, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mut det = OneHeavyHitter::new(Epsilon::new(0.2).unwrap(), 0.05, &mut rng);
    for p in corpus.papers() {
        det.push(p);
    }
    let s = det.sample_size();
    // levels ≈ log_{1.2}(150) ≈ 28; each retained sample ≤ 2 words here.
    let bound = 40 * (3 * s + 2) + 2;
    assert!(det.space_words() <= bound, "{} > {bound}", det.space_words());
}

/// Theorem 18: geometry is `⌈log₂(1/(εδ))⌉ × ⌈2/ε²⌉` Algorithm-7
/// instances. Space saturates at a bound set by that geometry (buckets
/// × levels × reservoir capacity), independent of how many *more*
/// authors arrive.
#[test]
fn theorem_18_geometry_author_independent() {
    let params = HeavyHittersParams::new(
        Epsilon::new(0.25).unwrap(),
        Delta::new(0.05).unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(4);
    let mut many = HeavyHitters::new(params, &mut rng);
    for i in 0..2_000u64 {
        many.push(&Paper::solo(i, i, (i % 40) + 1));
    }
    let words_2k = many.space_words();
    // Ten times more (distinct) authors: the sketch must have already
    // saturated — growth well below proportional.
    for i in 2_000..20_000u64 {
        many.push(&Paper::solo(i, i, (i % 40) + 1));
    }
    let words_20k = many.space_words();
    assert!(
        words_20k <= words_2k + words_2k / 5,
        "no saturation: {words_2k} → {words_20k}"
    );
    // And the absolute bound from the geometry: rows × buckets ×
    // (levels × (s·2 + 2) + slack).
    let rows = params.rows();
    let buckets = params.buckets();
    let bound = rows * buckets * (20 * (40 * 2 + 2) + 25) + 100;
    assert!(words_20k <= bound, "{words_20k} > geometry bound {bound}");
}

/// The sharded engine's space is the sum of its parts: every shard's
/// estimator plus the bounded channel capacity and the router's local
/// buffers. No hidden state.
#[test]
fn engine_space_accounts_shards_and_channels() {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    let prototype = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(8));
    let proto_words = prototype.space_words();
    let config = hindex_engine::EngineConfig::builder().shards(3).batch(64).queue_depth(2).build().unwrap();
    let mut engine = ShardedEngine::new(config, prototype);
    for i in 0..5_000u64 {
        engine.ingest((i % 200, 1));
    }
    // (u64, u64) items occupy two words per slot.
    let channel_words = 3 * 2 * 64 * 2;
    let buffered_words = engine.buffered_items() * 2;
    let words = engine.space_words();
    assert!(
        words >= 3 * proto_words + channel_words + buffered_words,
        "{words} < parts"
    );
    // Upper bound: shard sketches only grow by their capped BJKST
    // buffers (Theorem 14's stream-independence, per shard).
    assert!(
        words <= 3 * (proto_words + 100_000) + channel_words + buffered_words,
        "engine space unbounded: {words}"
    );
    engine.finish().unwrap();
}

/// The exact engine splits the key space: the shards' tables together
/// store each distinct paper exactly once, so sharding adds only the
/// fixed channel capacity.
#[test]
fn exact_engine_space_partitions_keys() {
    use hindex_baseline::CashTable;
    use hindex_common::CashRegisterEstimator as _;
    let mut single = CashTable::new();
    let config = hindex_engine::EngineConfig::builder().shards(4).batch(32).queue_depth(2).build().unwrap();
    let mut engine = ShardedEngine::new(config, CashTable::new());
    for i in 0..3_000u64 {
        single.ingest(i % 500, 2);
        engine.ingest((i % 500, 2));
    }
    engine.flush();
    let channel_words = 4 * 2 * 32 * 2;
    let words = engine.space_words();
    assert!(
        words <= single.space_words() + channel_words + 64,
        "sharded exact tables duplicate keys: {words}"
    );
    engine.finish().unwrap();
}

/// §6 extensions (g-index, α-index) and the sliding-window estimator
/// keep one cell (or one DGIM counter) per ε-grid level of the *value*
/// range: once the value range has been covered, space is independent
/// of how much more stream arrives.
#[test]
fn extension_estimators_space_value_range_bounded() {
    let eps = Epsilon::new(0.2).unwrap();
    let words_at = |n: u64| {
        let mut g = StreamingGIndex::new(eps);
        let mut alpha = StreamingAlphaIndex::new(eps, 2.0);
        let mut sliding = SlidingHIndex::new(eps, 256, 0.1);
        for i in 0..n {
            let v = (i * 31) % 1_000 + 1; // gcd(31, 1000) = 1: full range every 1 000 steps
            g.ingest(v);
            alpha.ingest(v);
            sliding.ingest(v);
        }
        (g.space_words(), alpha.space_words(), sliding.space_words())
    };
    let (g_5k, alpha_5k, sliding_5k) = words_at(5_000);
    let (g_words, alpha_words, sliding_words) = words_at(50_000);
    // Level-indexed cells: exactly stream-length independent.
    assert_eq!((g_5k, alpha_5k), (g_words, alpha_words), "space grew with stream length");
    // DGIM bucket counts grow with the *logarithm* of ones seen in the
    // window, so 10× more stream may add a handful of buckets per
    // level — but nothing near proportional.
    assert!(
        sliding_words <= sliding_5k + sliding_5k / 10,
        "sliding window far from saturation: {sliding_5k} → {sliding_words}"
    );
    // Absolute scale: ~log_{1+ε} 1000 ≈ 38 levels. The level-indexed
    // cells stay within a small multiple of that; the sliding window
    // pays a DGIM counter (O(k log W) words) per level, far below the
    // Θ(n) linear baseline either way.
    assert!(g_words <= 4 * 38 + 1, "g-index: {g_words}");
    assert!(alpha_words <= 2 * 38, "alpha-index: {alpha_words}");
    assert!(sliding_words < 50_000 / 10, "sliding: {sliding_words}");
}

/// The exact baselines really do pay linear/Θ(h) space — the gap the
/// paper's sketches close.
#[test]
fn baselines_pay_linear_space() {
    use hindex_baseline::{CashTable, FullStore};
    use hindex_common::{AggregateEstimator as _, CashRegisterEstimator as _};
    let mut full = FullStore::new();
    let mut table = CashTable::new();
    for i in 0..10_000u64 {
        full.ingest(i);
        table.ingest(i, 1);
    }
    assert!(full.space_words() >= 10_000);
    assert!(table.space_words() >= 10_000);
}

/// Kernel-layer accounting policy (`docs/ALGORITHMS.md`, "Space
/// accounting for derived scratch"): windowed power ladders are
/// recomputable from randomness the sketch already counts, so the
/// paper-facing `space_words` must exclude them — exactly the grid +
/// row hashes + checksum it reported before the kernel layer existed —
/// while `scratch_words` carries the tables on a separate channel.
#[test]
fn derived_scratch_excluded_from_paper_space() {
    use hindex_hashing::PowerLadder;
    use hindex_sketch::SparseRecovery;
    use std::sync::Arc;

    let (s, rows) = (4usize, 6usize);
    let mut sketch = SparseRecovery::new(s, rows, &mut StdRng::seed_from_u64(7));
    // Pre-kernel formula: rows × 2s cells + checksum (6 words each)
    // plus (a, b) per row hash. No ladder words anywhere in it.
    let paper_words = rows * 2 * s * 6 + 6 + 2 * rows;
    assert_eq!(sketch.space_words(), paper_words);
    // The ladder is exactly the 8 × 256 window table plus its base,
    // reported on the scratch channel only.
    assert_eq!(sketch.scratch_words(), 8 * 256 + 1);
    // Ingestion (which materialises the lazy grid) moves neither.
    for i in 0..1_000u64 {
        sketch.update(i % 37, 1);
    }
    assert_eq!(sketch.space_words(), paper_words);
    assert_eq!(sketch.scratch_words(), 8 * 256 + 1);

    // Supplying a shared ladder changes who owns the table, never the
    // paper-facing count.
    let shared = Arc::new(PowerLadder::new(123_456_789));
    let sharing =
        SparseRecovery::with_shared_ladder(s, rows, shared, &mut StdRng::seed_from_u64(8));
    assert_eq!(sharing.space_words(), paper_words);
}

/// Ladder sharing is counted at the sharing level: an ℓ₀-sampler's ~40
/// levels hold one `Arc`'d ladder between them and must report one
/// table — and the composed estimators above it keep scratch on its
/// own channel, in whole-ladder units. The cash-register bank shares
/// a single ladder across all x samplers (the bank-wide kernel's term
/// sharing), so the whole bank reports exactly one ladder, not x.
#[test]
fn shared_ladders_counted_once_per_sharing_scope() {
    use hindex_sketch::{L0Sampler, L0SamplerParams};

    let ladder_words = 8 * 256 + 1;
    let sampler =
        L0Sampler::new(L0SamplerParams::default(), &mut StdRng::seed_from_u64(9));
    assert!(sampler.num_levels() >= 2);
    assert_eq!(sampler.scratch_words(), ladder_words);

    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    let cash = CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(10));
    assert!(params.num_samplers() > 1);
    assert_eq!(cash.scratch_words() % ladder_words, 0);
    assert_eq!(cash.scratch_words() / ladder_words, 1);

    let turnstile = TurnstileHIndex::new(
        Epsilon::new(0.4).unwrap(),
        Delta::new(0.3).unwrap(),
        &mut StdRng::seed_from_u64(11),
    );
    assert_eq!(turnstile.scratch_words() % ladder_words, 0);
    assert!(turnstile.scratch_words() / ladder_words > turnstile.num_samplers());
}

/// The supervised engine's replay log is recovery scratch, not paper
/// space: killing and healing a shard must leave `space_words` on the
/// same ledger the plain engine reports (estimator frames + channels +
/// buffers), with the log's words confined to `scratch_words`.
#[test]
fn supervised_replay_log_is_scratch_not_space() {
    use hindex_baseline::CashTable;

    let config = hindex_engine::EngineConfig::builder()
        .shards(2)
        .batch(16)
        .queue_depth(2)
        .build()
        .unwrap();
    let sup = hindex_engine::SupervisorConfig {
        checkpoint_interval: 1_000, // never trims mid-run: the log keeps every batch
        ..hindex_engine::SupervisorConfig::default()
    };
    let mut engine =
        hindex_engine::SupervisedEngine::new(config, sup, CashTable::new()).unwrap();
    for i in 0..2_000u64 {
        engine.ingest((i % 97, 1));
    }
    engine.flush();

    let scratch = engine.scratch_words();
    let space = engine.space_words();
    // (u64, u64) items are two words per logged slot; ~125 batches of
    // 16 are outstanding past the spawn frame.
    assert!(scratch >= 100 * 16 * 2, "replay log unaccounted: {scratch}");
    // The paper-facing ledger is bounded by channels + retained
    // frames (buffers are empty after `flush`) — it must not have
    // absorbed the log.
    let channel_words = 2 * 2 * 16 * 2;
    let frame_words = 2 * 1_024; // two retained spawn/interval frames, generously
    assert!(
        space <= channel_words + frame_words,
        "replay words leaked into space_words: {space}"
    );
    assert!(engine.finish().is_ok());
}
