//! Anytime-query semantics: every estimator must answer correctly at
//! *any* prefix of the stream, not just at the end — streaming systems
//! query continuously.

use hindex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn eps(e: f64) -> Epsilon {
    Epsilon::new(e).unwrap()
}

#[test]
fn deterministic_sketches_valid_at_every_prefix() {
    let e = 0.2;
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..3_000).map(|_| rng.random_range(0..3_000)).collect();
    let mut hist = ExponentialHistogram::new(eps(e));
    let mut win = ShiftingWindow::new(eps(e));
    let mut exact = IncrementalHIndex::new();
    for &v in &values {
        hist.ingest(v);
        win.ingest(v);
        exact.insert(v);
        let truth = exact.h_index();
        for (name, got) in [("hist", hist.estimate()), ("win", win.estimate())] {
            assert!(got <= truth, "{name} over at prefix");
            assert!(
                got as f64 >= (1.0 - e) * truth as f64,
                "{name} under at prefix: {got} vs {truth}"
            );
        }
    }
}

#[test]
fn estimates_monotone_under_growth() {
    // H-index is monotone under insertion; both deterministic sketches'
    // estimates must be too (their counters only grow).
    let mut rng = StdRng::seed_from_u64(2);
    let mut hist = ExponentialHistogram::new(eps(0.15));
    let mut win = ShiftingWindow::new(eps(0.15));
    let (mut ph, mut pw) = (0u64, 0u64);
    for _ in 0..5_000 {
        let v = rng.random_range(0..10_000u64);
        hist.ingest(v);
        win.ingest(v);
        let (h, w) = (hist.estimate(), win.estimate());
        assert!(h >= ph, "histogram estimate decreased");
        assert!(w >= pw, "window estimate decreased");
        ph = h;
        pw = w;
    }
}

#[test]
fn cash_register_queries_mid_stream() {
    // Query the sketch repeatedly while the stream is in flight; every
    // answer must respect the additive bound against the prefix truth.
    use hindex_baseline::CashTable;
    use hindex_common::CashRegisterEstimator as _;
    let params = CashRegisterParams::Additive {
        epsilon: eps(0.25),
        delta: Delta::new(0.1).unwrap(),
    };
    let mut ok_checks = 0;
    let mut total_checks = 0;
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sketch = CashRegisterHIndex::new(params, &mut rng);
        let mut exact = CashTable::new();
        for step in 0..1_500u64 {
            let paper = step % 60;
            sketch.ingest(paper, 1);
            exact.ingest(paper, 1);
            if step % 300 == 299 {
                total_checks += 1;
                let truth = exact.estimate();
                let d = exact.distinct();
                if (sketch.estimate() as f64 - truth as f64).abs() <= 0.25 * d as f64 + 1.0 {
                    ok_checks += 1;
                }
            }
        }
    }
    assert!(
        ok_checks * 10 >= total_checks * 9,
        "mid-stream bound held in only {ok_checks}/{total_checks} checks"
    );
}

#[test]
fn timeline_captures_the_trajectory() {
    // Combine an estimator with the Timeline recorder and check the
    // recorded curve against prefix ground truth.
    let mut est = ShiftingWindow::new(eps(0.1));
    let mut exact = IncrementalHIndex::new();
    let mut timeline = Timeline::new(0.3);
    let values: Vec<u64> = (1..=4_000).collect();
    let mut truths = Vec::new();
    for (step, &v) in values.iter().enumerate() {
        est.ingest(v);
        exact.insert(v);
        timeline.observe(step as u64, est.estimate());
        truths.push(exact.h_index());
    }
    // Spot-check: recorded value within (1+γ)(1−ε)⁻¹-ish of prefix truth.
    for &step in &[100u64, 500, 1500, 3999] {
        let recorded = timeline.value_at(step);
        let truth = truths[step as usize];
        assert!(recorded <= truth, "step {step}");
        assert!(
            (recorded as f64) * 1.3 / 0.9 >= truth as f64,
            "step {step}: {recorded} vs {truth}"
        );
    }
    use hindex_common::SpaceUsage;
use hindex_common::Estimate;
    assert!(timeline.space_words() < 80);
}

#[test]
fn heavy_hitters_queryable_before_end() {
    use hindex_stream::generator::planted_heavy_hitters;
    let corpus = planted_heavy_hitters(&[80], 40, 3, 2, 7);
    let mut rng = StdRng::seed_from_u64(3);
    let mut hh = HeavyHitters::new(
        HeavyHittersParams::new(eps(0.2), Delta::new(0.1).unwrap()),
        &mut rng,
    );
    let papers = corpus.papers();
    // Feed two thirds, query, feed the rest, query again.
    let cut = papers.len() * 2 / 3;
    for p in &papers[..cut] {
        hh.push(p);
    }
    let early = hh.decode();
    for p in &papers[cut..] {
        hh.push(p);
    }
    let late = hh.decode();
    // The planted author's papers are spread throughout; both queries
    // should find author 0 (the early one against the prefix impact).
    assert!(late.iter().any(|c| c.author == AuthorId(0)), "final decode missed");
    assert!(
        early.iter().any(|c| c.author == AuthorId(0)),
        "mid-stream decode missed: {early:?}"
    );
}
