//! End-to-end tests of the sharded ingestion engine: for every
//! mergeable estimator, partitioning a stream across worker shards and
//! merging the shard states must reproduce what a single estimator
//! sees on the whole stream. Everything is seeded, so the sketch
//! comparisons are exact, not statistical.

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cash_stream() -> Vec<(u64, u64)> {
    // Mixed deltas over 350 papers, adversarially ordered (big papers
    // interleave with small ones).
    (0..7_000u64).map(|i| (i % 350, 1 + i % 3)).collect()
}

fn sketch_prototype(seed: u64) -> CashRegisterHIndex {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.25).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    params.build(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn exact_table_sharded_equals_serial() {
    let updates = cash_stream();
    let mut serial = CashTable::new();
    for &(p, z) in &updates {
        serial.ingest(p, z);
    }
    for shards in [1, 2, 3, 8] {
        let mut engine = ShardedEngine::new(EngineConfig::with_shards(shards), CashTable::new());
        engine.ingest_batch(&updates);
        let merged = engine.finish().unwrap();
        assert_eq!(merged.estimate(), serial.estimate(), "shards {shards}");
    }
}

#[test]
fn sketch_sharded_state_identical_to_serial() {
    // Linear sketches with shared randomness: the merged shard state is
    // *bit-identical* to serial ingestion, so estimates AND the drawn
    // sampler outputs agree exactly.
    let updates = cash_stream();
    let prototype = sketch_prototype(11);
    let mut serial = prototype.clone();
    for &(p, z) in &updates {
        serial.ingest(p, z);
    }
    for shards in [1, 2, 4] {
        let config = EngineConfig::builder().shards(shards).batch(512).build().unwrap();
        let mut engine = ShardedEngine::new(config, prototype.clone());
        engine.ingest_batch(&updates);
        let merged = engine.finish().unwrap();
        assert_eq!(merged.estimate(), serial.estimate(), "shards {shards}");
        assert_eq!(merged.draw_samples(), serial.draw_samples(), "shards {shards}");
    }
}

#[test]
fn batch_size_does_not_change_the_answer() {
    // Per-batch coalescing reorders and combines same-paper deltas;
    // linearity makes that invisible in the final state.
    let updates = cash_stream();
    let prototype = sketch_prototype(23);
    let mut reference: Option<u64> = None;
    for batch_size in [1, 7, 256, 4096] {
        let config = EngineConfig::builder().shards(3).batch(batch_size).queue_depth(2).build().unwrap();
        let mut engine = ShardedEngine::new(config, prototype.clone());
        engine.ingest_batch(&updates);
        let estimate = engine.finish().unwrap().estimate();
        match reference {
            None => reference = Some(estimate),
            Some(r) => assert_eq!(r, estimate, "batch {batch_size}"),
        }
    }
}

#[test]
fn aggregate_round_robin_matches_serial() {
    // Aggregate model: values round-robin across shards; the
    // exponential histogram's counters are additive, so the merged
    // level vector is identical to serial ingestion.
    let eps = Epsilon::new(0.2).unwrap();
    let values: Vec<u64> = (0..5_000u64).map(|i| (i * 37) % 4_000 + 1).collect();
    let mut serial = ExponentialHistogram::new(eps);
    serial.ingest_batch(&values);
    let mut engine =
        ShardedEngine::new(EngineConfig::with_shards(4), ExponentialHistogram::new(eps));
    engine.ingest_batch(&values);
    let merged = engine.finish().unwrap();
    assert_eq!(merged.counters(), serial.counters());
    assert_eq!(merged.estimate(), serial.estimate());
}

#[test]
fn anytime_query_equals_prefix_and_ingestion_continues() {
    let updates = cash_stream();
    let (head, tail) = updates.split_at(3_000);
    let mut engine = ShardedEngine::new(EngineConfig::with_shards(2), CashTable::new());
    engine.ingest_batch(head);
    // query() flushes, so the snapshot covers exactly the prefix.
    let mut prefix = CashTable::new();
    for &(p, z) in head {
        prefix.ingest(p, z);
    }
    assert_eq!(engine.query().unwrap().estimate(), prefix.estimate());
    // The engine is still live: the tail lands on the same shards.
    engine.ingest_batch(tail);
    let mut whole = CashTable::new();
    for &(p, z) in &updates {
        whole.ingest(p, z);
    }
    assert_eq!(engine.finish().unwrap().estimate(), whole.estimate());
}

#[test]
fn same_stream_same_prototype_is_deterministic() {
    let updates = cash_stream();
    let run = || {
        let mut engine = ShardedEngine::new(EngineConfig::with_shards(4), sketch_prototype(5));
        engine.ingest_batch(&updates);
        engine.finish().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.estimate(), b.estimate());
    assert_eq!(a.draw_samples(), b.draw_samples());
    assert_eq!(a.space_words(), b.space_words());
}

#[test]
fn routing_keeps_papers_on_one_shard() {
    // Sharding by paper is what lets per-shard coalescing work and
    // keeps any per-key invariant local to one worker: replaying the
    // engine's route() must give one shard per paper.
    let shards = 8;
    for paper in 0..350u64 {
        let first = (paper, 1u64).route(shards, 0);
        for tick in 1..50 {
            assert_eq!((paper, 1u64).route(shards, tick), first, "paper {paper}");
        }
    }
}
