//! Deterministic-schedule stress test for the sharded engine.
//!
//! The engine's concurrency argument (see `crates/engine/src/lib.rs`,
//! "Concurrency audit") is that (1) each shard sees its sub-stream in
//! FIFO order, and (2) *any* cross-shard interleaving of those
//! sub-streams merges to the same bits, because every estimator's state
//! is commutative and exact. Thread schedules cannot be forced from
//! safe code, so this suite replays the engine's own routing
//! single-threaded under **seeded schedules**: for ≥ 8 seeds it draws a
//! random batch interleaving (preserving per-shard FIFO) and a random
//! merge order, and asserts the merged state is bit-identical to the
//! serial run and to the real multi-threaded [`ShardedEngine`].
//!
//! Bit-identity is asserted on full observable state (exact counts,
//! counter vectors) always, and on `state_digest()` fingerprints when
//! the `debug_invariants` feature is armed.

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_engine::{mix64, EngineConfig, ShardedEngine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 10;
const SHARDS: usize = 4;
const BATCH: usize = 32;

/// Splits a key-routed stream into per-shard FIFO batch queues exactly
/// the way the engine's router does (`mix64(key) % shards`, batches of
/// `batch` in arrival order).
fn key_routed_batches<T: Copy>(
    items: &[T],
    key: impl Fn(&T) -> u64,
    shards: usize,
    batch: usize,
) -> Vec<Vec<Vec<T>>> {
    let mut queues: Vec<Vec<T>> = vec![Vec::new(); shards];
    for item in items {
        queues[(mix64(key(item)) % shards as u64) as usize].push(*item);
    }
    queues
        .into_iter()
        .map(|q| q.chunks(batch).map(<[T]>::to_vec).collect())
        .collect()
}

/// Round-robin routing for aggregate (`u64`) items: the engine's tick
/// counter is the stream position.
fn round_robin_batches(items: &[u64], shards: usize, batch: usize) -> Vec<Vec<Vec<u64>>> {
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for (tick, &v) in items.iter().enumerate() {
        queues[tick % shards].push(v);
    }
    queues
        .into_iter()
        .map(|q| q.chunks(batch).map(<[u64]>::to_vec).collect())
        .collect()
}

/// Replays the per-shard batch queues in a seeded random interleaving
/// that preserves each shard's FIFO order, applying each batch to that
/// shard's estimator clone. Returns the final per-shard states.
fn replay_schedule<E: Clone, T>(
    prototype: &E,
    queues: &[Vec<Vec<T>>],
    mut ingest: impl FnMut(&mut E, &[T]),
    rng: &mut StdRng,
) -> Vec<E> {
    let mut states: Vec<E> = (0..queues.len()).map(|_| prototype.clone()).collect();
    let mut next = vec![0usize; queues.len()];
    let total: usize = queues.iter().map(Vec::len).sum();
    for _ in 0..total {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&s| next[s] < queues[s].len())
            .collect();
        let shard = live[rng.random_range(0..live.len())];
        ingest(&mut states[shard], &queues[shard][next[shard]]);
        next[shard] += 1;
    }
    states
}

/// Merges shard states in the given order (empty shards included, as
/// the engine's workers return untouched clones).
fn merge_in_order<E: Mergeable + Clone>(states: &[E], order: &[usize]) -> E {
    let mut acc = states[order[0]].clone();
    for &i in &order[1..] {
        acc.merge(&states[i]);
    }
    acc
}

fn shuffled_order(shards: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards).collect();
    order.shuffle(rng);
    order
}

#[test]
fn cash_table_bit_identical_across_schedules() {
    // Skewed key-routed stream with heavy papers and a long tail.
    let updates: Vec<(u64, u64)> = (0..4_000u64)
        .map(|k| if k % 3 == 0 { (k % 17, 2) } else { (k % 997, 1) })
        .collect();
    let mut serial = CashTable::new();
    for &(i, d) in &updates {
        serial.ingest(i, d);
    }

    let config = EngineConfig::builder().shards(SHARDS).batch(BATCH).queue_depth(2).build().unwrap();
    let mut engine = ShardedEngine::new(config, CashTable::new());
    engine.ingest_batch(&updates);
    let threaded = engine.finish().unwrap();
    assert_eq!(threaded.estimate(), serial.estimate());
    assert_eq!(threaded.distinct(), serial.distinct());

    let queues = key_routed_batches(&updates, |u| u.0, SHARDS, BATCH);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let states = replay_schedule(
            &CashTable::new(),
            &queues,
            |e, batch| {
                for &(i, d) in batch {
                    e.ingest(i, d);
                }
            },
            &mut rng,
        );
        let merged = merge_in_order(&states, &shuffled_order(SHARDS, &mut rng));
        // Bit identity of the full observable state: every exact count.
        assert_eq!(merged.estimate(), serial.estimate(), "seed {seed}");
        assert_eq!(merged.distinct(), serial.distinct(), "seed {seed}");
        for paper in 0..997u64 {
            assert_eq!(merged.count(paper), serial.count(paper), "seed {seed} paper {paper}");
        }
    }
}

#[test]
fn exponential_histogram_bit_identical_across_schedules() {
    let values: Vec<u64> = (0..3_000u64).map(|k| (k * 7919) % 50_000).collect();
    let mut serial = ExponentialHistogram::new(Epsilon::new(0.2).unwrap());
    serial.ingest_batch(&values);

    let config = EngineConfig::builder().shards(SHARDS).batch(BATCH).queue_depth(2).build().unwrap();
    let mut engine = ShardedEngine::new(
        config,
        ExponentialHistogram::new(Epsilon::new(0.2).unwrap()),
    );
    engine.ingest_batch(&values);
    let threaded = engine.finish().unwrap();
    assert_eq!(threaded.counters(), serial.counters());

    let queues = round_robin_batches(&values, SHARDS, BATCH);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let states = replay_schedule(
            &ExponentialHistogram::new(Epsilon::new(0.2).unwrap()),
            &queues,
            |e, batch| e.ingest_batch(batch),
            &mut rng,
        );
        let merged = merge_in_order(&states, &shuffled_order(SHARDS, &mut rng));
        // The counter vector is the sketch's entire level state.
        assert_eq!(merged.counters(), serial.counters(), "seed {seed}");
        assert_eq!(merged.estimate(), serial.estimate(), "seed {seed}");
        #[cfg(feature = "debug_invariants")]
        {
            assert_eq!(merged.state_digest(), serial.state_digest(), "seed {seed}");
            assert_eq!(threaded.state_digest(), serial.state_digest());
        }
    }
}

#[test]
fn turnstile_bit_identical_across_schedules_with_retractions() {
    // Inserts and their retractions deliberately land in different
    // batches (and, under key routing, the same shard — but schedules
    // reorder *across* shards arbitrarily).
    let mut updates: Vec<(u64, i64)> = (0..2_400u64).map(|k| (k % 160, 5)).collect();
    updates.extend((0..80u64).map(|p| (p, -5)));
    let proto = TurnstileHIndex::with_sampler_count(
        Epsilon::new(0.4).unwrap(),
        Delta::new(0.3).unwrap(),
        15,
        &mut StdRng::seed_from_u64(4242),
    );
    let mut serial = proto.clone();
    for &(i, d) in &updates {
        TurnstileEstimator::ingest(&mut serial, i, d);
    }

    let config = EngineConfig::builder().shards(SHARDS).batch(BATCH).queue_depth(2).build().unwrap();
    let mut engine = ShardedEngine::new(config, proto.clone());
    engine.ingest_batch(&updates);
    let threaded = engine.finish().unwrap();
    assert_eq!(threaded.estimate(), serial.estimate());

    let queues = key_routed_batches(&updates, |u| u.0, SHARDS, BATCH);
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let states = replay_schedule(
            &proto,
            &queues,
            |e, batch| e.update_batch(batch),
            &mut rng,
        );
        let merged = merge_in_order(&states, &shuffled_order(SHARDS, &mut rng));
        assert_eq!(merged.estimate(), serial.estimate(), "seed {seed}");
        // Linear sketches over an exact field: the merged internal
        // state (every sampler cell, every norm core) is bit-identical
        // to the serial stream's, whatever the schedule.
        #[cfg(feature = "debug_invariants")]
        {
            assert_eq!(merged.state_digest(), serial.state_digest(), "seed {seed}");
            assert_eq!(threaded.state_digest(), serial.state_digest());
        }
    }
}

/// The schedule replay must route exactly like the engine, or the
/// comparison above proves nothing: pin the router's key→shard map.
#[test]
fn replay_routing_matches_engine_routing() {
    use hindex_engine::Routable;
    for paper in 0..500u64 {
        let expected = (mix64(paper) % SHARDS as u64) as usize;
        assert_eq!((paper, 1u64).route(SHARDS, 99), expected);
        assert_eq!((paper, -1i64).route(SHARDS, 7), expected);
    }
    for tick in 0..500u64 {
        assert_eq!(42u64.route(SHARDS, tick), (tick % SHARDS as u64) as usize);
    }
}
