//! Crash recovery: a killed engine restored from its last checkpoint
//! and replayed from the recorded stream offset must reach the same
//! state as an engine that never crashed — identical estimates and
//! samples always, and a bit-identical `state_digest` under the
//! invariant layer.

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_common::snapshot::Snapshot;
use hindex_core::{CashRegisterHIndex, CashRegisterParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(shards: usize) -> EngineConfig {
    EngineConfig::builder().shards(shards).batch(32).build().unwrap()
}

fn stream(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|k| ((k * 17) % 300, 1 + k % 3)).collect()
}

fn sketch_proto(seed: u64) -> CashRegisterHIndex {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(seed))
}

/// Runs the crash drill for one estimator type and returns the
/// uninterrupted and the recovered final states.
fn crash_and_recover<E>(proto: E, shards: usize, updates: &[(u64, u64)]) -> (E, E)
where
    E: BatchIngest<(u64, u64)> + Clone + Mergeable + Snapshot + Send + Sync + 'static,
{
    // Reference: one engine sees the whole stream, never interrupted.
    let mut reference = ShardedEngine::new(config(shards), proto.clone());
    reference.ingest_batch(updates);
    let reference = reference.finish().expect("reference run");

    // Victim: ingests a prefix, checkpoints to *bytes* (as a real
    // process would persist to disk), keeps running past the
    // checkpoint, then "crashes" — everything after the checkpoint is
    // lost, including any state still buffered in worker channels.
    let cut = updates.len() / 2;
    let mut victim = ShardedEngine::new(config(shards), proto);
    victim.ingest_batch(&updates[..cut]);
    let checkpoint = victim.checkpoint().expect("checkpoint");
    assert_eq!(checkpoint.stream_offset(), cut as u64);
    let frame = checkpoint.to_bytes();
    victim.ingest_batch(&updates[cut..cut + cut / 2]); // lost work
    drop(victim); // the crash

    // Recovery: decode the persisted frame, respawn, and replay the
    // input stream from the recorded offset.
    let (restored_cp, used) =
        hindex_engine::EngineCheckpoint::<E>::read_from(&frame).expect("decode checkpoint");
    assert_eq!(used, frame.len());
    assert_eq!(restored_cp.stream_offset(), cut as u64);
    let mut recovered = ShardedEngine::restore(restored_cp).expect("valid checkpoint");
    assert_eq!(recovered.stream_offset(), cut as u64);
    recovered.ingest_batch(&updates[cut..]);
    let recovered = recovered.finish().expect("recovered run");
    (reference, recovered)
}

#[test]
fn recovered_exact_engine_matches_uninterrupted_run_exactly() {
    let updates = stream(4_000);
    for shards in [1, 2, 5] {
        let (reference, recovered) = crash_and_recover(CashTable::new(), shards, &updates);
        assert_eq!(recovered.estimate(), reference.estimate(), "shards {shards}");
        assert_eq!(recovered.distinct(), reference.distinct(), "shards {shards}");
        for paper in 0..300u64 {
            assert_eq!(
                recovered.count(paper),
                reference.count(paper),
                "shards {shards}, paper {paper}"
            );
        }
    }
}

#[test]
fn recovered_sketch_engine_matches_uninterrupted_run() {
    let updates = stream(3_000);
    for shards in [1, 3] {
        let (reference, recovered) = crash_and_recover(sketch_proto(42), shards, &updates);
        // The sketch is a deterministic function of (randomness, multiset
        // of per-shard updates); restore + replay routes every update to
        // the same shard as the reference, so the merged states agree on
        // every observable, not just within tolerance.
        assert_eq!(recovered.estimate(), reference.estimate(), "shards {shards}");
        assert_eq!(recovered.draw_samples(), reference.draw_samples(), "shards {shards}");
        #[cfg(feature = "debug_invariants")]
        assert_eq!(
            recovered.state_digest(),
            reference.state_digest(),
            "shards {shards}: digests diverged"
        );
    }
}

#[test]
fn checkpoint_at_zero_replays_everything() {
    let updates = stream(1_000);
    let mut victim = ShardedEngine::new(config(2), sketch_proto(7));
    let checkpoint = victim.checkpoint().expect("empty checkpoint");
    assert_eq!(checkpoint.stream_offset(), 0);
    let frame = checkpoint.to_bytes();
    drop(victim);

    let mut reference = ShardedEngine::new(config(2), sketch_proto(7));
    reference.ingest_batch(&updates);
    let reference = reference.finish().unwrap();

    let (cp, _) =
        hindex_engine::EngineCheckpoint::<CashRegisterHIndex>::read_from(&frame).unwrap();
    let mut recovered = ShardedEngine::restore(cp).unwrap();
    recovered.ingest_batch(&updates);
    let recovered = recovered.finish().unwrap();
    assert_eq!(recovered.estimate(), reference.estimate());
    assert_eq!(recovered.draw_samples(), reference.draw_samples());
}

#[test]
fn chained_checkpoints_recover_after_repeated_crashes() {
    // Crash twice: checkpoint A at 1/3, restore, checkpoint B at 2/3
    // (taken by the *restored* engine), restore again, finish. State
    // must still match the never-crashed run.
    let updates = stream(3_000);
    let third = updates.len() / 3;

    let mut reference = ShardedEngine::new(config(3), sketch_proto(9));
    reference.ingest_batch(&updates);
    let reference = reference.finish().unwrap();

    let mut first = ShardedEngine::new(config(3), sketch_proto(9));
    first.ingest_batch(&updates[..third]);
    let frame_a = first.checkpoint().unwrap().to_bytes();
    drop(first);

    let (cp_a, _) =
        hindex_engine::EngineCheckpoint::<CashRegisterHIndex>::read_from(&frame_a).unwrap();
    let mut second = ShardedEngine::restore(cp_a).unwrap();
    second.ingest_batch(&updates[third..2 * third]);
    let frame_b = second.checkpoint().unwrap().to_bytes();
    drop(second);

    let (cp_b, _) =
        hindex_engine::EngineCheckpoint::<CashRegisterHIndex>::read_from(&frame_b).unwrap();
    assert_eq!(cp_b.stream_offset(), 2 * third as u64);
    let mut third_run = ShardedEngine::restore(cp_b).unwrap();
    third_run.ingest_batch(&updates[2 * third..]);
    let recovered = third_run.finish().unwrap();

    assert_eq!(recovered.estimate(), reference.estimate());
    assert_eq!(recovered.draw_samples(), reference.draw_samples());
    #[cfg(feature = "debug_invariants")]
    assert_eq!(recovered.state_digest(), reference.state_digest());
}

#[test]
fn restore_preserves_engine_geometry() {
    let mut engine = ShardedEngine::new(config(4), CashTable::new());
    engine.ingest_batch(&stream(100));
    let checkpoint = engine.checkpoint().unwrap();
    assert_eq!(checkpoint.config().shards, 4);
    assert_eq!(checkpoint.shard_states().len(), 4);
    engine.finish().unwrap();

    let restored = ShardedEngine::restore(checkpoint).unwrap();
    assert_eq!(restored.config().shards, 4);
    restored.finish().unwrap();
}

/// A valid encoded checkpoint frame for tamper tests.
fn exact_frame(shards: usize) -> Vec<u8> {
    let mut engine = ShardedEngine::new(config(shards), CashTable::new());
    engine.ingest_batch(&stream(200));
    let checkpoint = engine.checkpoint().unwrap();
    engine.finish().unwrap();
    checkpoint.to_bytes()
}

/// Overwrites the shard-count field (first payload word, after the
/// 14-byte HIXS header) and repairs the trailing checksum, so only the
/// geometry validation can reject the frame.
fn tamper_shard_count(frame: &mut [u8], shards: u64) {
    frame[14..22].copy_from_slice(&shards.to_le_bytes());
    let split = frame.len() - 8;
    let sum = hindex_common::snapshot::fnv1a(&frame[..split]);
    frame[split..].copy_from_slice(&sum.to_le_bytes());
}

// Regression: a checkpoint claiming more shard states than its payload
// holds used to reach the spawn path's internal assertions; it must be
// a typed decode error, never a panic.
#[test]
fn hostile_shard_count_is_a_decode_error_not_a_panic() {
    let mut frame = exact_frame(3);
    tamper_shard_count(&mut frame, 1_000_000);
    let err = hindex_engine::EngineCheckpoint::<CashTable>::read_from(&frame).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shard count"), "{msg}");
}

#[test]
fn zeroed_geometry_is_a_decode_error_not_a_panic() {
    let mut frame = exact_frame(3);
    tamper_shard_count(&mut frame, 0);
    let err = hindex_engine::EngineCheckpoint::<CashTable>::read_from(&frame).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("positive"), "{msg}");
}

// Regression: re-attaching an observer sized for the wrong shard count
// used to trip `assert!`s inside spawn; `restore` now validates and
// returns `EngineError::InvalidConfig`.
#[test]
fn restore_rejects_missized_observer() {
    let frame = exact_frame(3);
    let (cp, _) = hindex_engine::EngineCheckpoint::<CashTable>::read_from(&frame).unwrap();
    let wrong = std::sync::Arc::new(EngineObserver::new(2));
    let err = match ShardedEngine::restore(cp.with_observer(wrong)) {
        Ok(_) => panic!("restore accepted a mis-sized observer"),
        Err(err) => err,
    };
    assert!(
        matches!(err, EngineError::InvalidConfig { .. }),
        "want InvalidConfig, got {err:?}"
    );
    assert!(err.to_string().contains("observer"), "{err}");
}
