//! End-to-end tests of the aggregate-model pipeline: corpus generation
//! → stream ordering → every aggregate estimator → theorem guarantee
//! checks against exact ground truth.

use hindex::prelude::*;
use hindex_baseline::FullStore;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zipf_corpus(n: u64, seed: u64) -> Vec<u64> {
    CorpusGenerator {
        n_authors: 1,
        productivity: ProductivityDist::Constant(n),
        citations: CitationDist::Zipf { exponent: 2.0, max: 1_000_000 },
        max_coauthors: 1,
        seed,
    }
    .generate()
    .citation_counts()
}

#[test]
fn deterministic_algorithms_hold_under_every_order() {
    let base = zipf_corpus(20_000, 1);
    let truth = h_index(&base);
    let eps = 0.1;
    let mut rng = StdRng::seed_from_u64(2);
    let orders = [
        StreamOrder::AsIs,
        StreamOrder::Random,
        StreamOrder::Ascending,
        StreamOrder::Descending,
        StreamOrder::BigLast { pivot: truth },
        StreamOrder::BigFirst { pivot: truth },
    ];
    for order in orders {
        let values = order.applied(&base, &mut rng);
        let mut hist = ExponentialHistogram::new(Epsilon::new(eps).unwrap());
        let mut window = ShiftingWindow::new(Epsilon::new(eps).unwrap());
        hist.extend_from(values.iter().copied());
        window.extend_from(values.iter().copied());
        for (name, got) in [("hist", hist.estimate()), ("window", window.estimate())] {
            assert!(got <= truth, "{name} over-estimated under {order:?}");
            assert!(
                got as f64 >= (1.0 - eps) * truth as f64,
                "{name} under {order:?}: got {got}, truth {truth}"
            );
        }
    }
}

#[test]
fn all_estimators_agree_with_full_store() {
    let values = zipf_corpus(5_000, 3);
    let mut full = FullStore::new();
    full.extend_from(values.iter().copied());
    let truth = full.estimate();
    assert_eq!(truth, h_index(&values));

    let mut heap = IncrementalHIndex::new();
    for &v in &values {
        heap.insert(v);
    }
    assert_eq!(heap.h_index(), truth);
}

#[test]
fn random_order_estimator_on_generated_corpus() {
    // Zipf citations give modest h*; the capped-window branch answers
    // and must stay within ε.
    let mut values = zipf_corpus(30_000, 4);
    let truth = h_index(&values);
    let eps = 0.2;
    let mut rng = StdRng::seed_from_u64(5);
    StreamOrder::Random.apply(&mut values, &mut rng);
    let params = RandomOrderParams::new(
        Epsilon::new(eps).unwrap(),
        Delta::new(0.05).unwrap(),
        values.len() as u64,
    );
    let mut est = RandomOrderEstimator::new(params);
    est.extend_from(values.iter().copied());
    let got = est.estimate();
    assert!(got <= truth);
    assert!(
        got as f64 >= (1.0 - eps) * truth as f64,
        "got {got}, truth {truth}"
    );
}

#[test]
fn space_ordering_matches_theory_at_scale() {
    // For a large stream with large h*: store-everything ≫ heap ≫
    // exp-histogram ≳ shifting-window (which is n-independent).
    let corpus = hindex_stream::generator::planted_h_corpus(5_000, 50_000, 6);
    let values = corpus.citation_counts();

    let mut full = FullStore::new();
    let mut heap = IncrementalHIndex::new();
    let mut hist = ExponentialHistogram::new(Epsilon::new(0.1).unwrap());
    let mut window = ShiftingWindow::new(Epsilon::new(0.1).unwrap());
    for &v in &values {
        full.ingest(v);
        heap.insert(v);
        hist.ingest(v);
        window.ingest(v);
    }
    assert!(full.space_words() > heap.space_words());
    assert!(heap.space_words() > hist.space_words());
    assert!(heap.space_words() > window.space_words());
}

#[test]
fn growing_stream_estimates_track_truth() {
    // Interleaved prefix checks: after every chunk, both deterministic
    // sketches stay within ε of the prefix truth.
    let values = zipf_corpus(10_000, 7);
    let eps = 0.15;
    let mut hist = ExponentialHistogram::new(Epsilon::new(eps).unwrap());
    let mut window = ShiftingWindow::new(Epsilon::new(eps).unwrap());
    let mut seen: Vec<u64> = Vec::new();
    for chunk in values.chunks(1000) {
        for &v in chunk {
            hist.ingest(v);
            window.ingest(v);
            seen.push(v);
        }
        let truth = h_index(&seen);
        for got in [hist.estimate(), window.estimate()] {
            assert!(got <= truth);
            assert!(got as f64 >= (1.0 - eps) * truth as f64);
        }
    }
}

#[test]
fn extensions_track_their_exact_variants() {
    use hindex_common::variants::{alpha_index, g_index};
    let values = zipf_corpus(3_000, 8);
    let eps = 0.1;
    let mut g = StreamingGIndex::new(Epsilon::new(eps).unwrap());
    let mut a2 = StreamingAlphaIndex::new(Epsilon::new(eps).unwrap(), 2.0);
    g.extend_from(values.iter().copied());
    a2.extend_from(values.iter().copied());

    let g_truth = g_index(&values);
    let got = g.estimate();
    assert!(got <= g_truth && got as f64 >= (1.0 - 2.5 * eps) * g_truth as f64);

    let a_truth = alpha_index(&values, 2.0);
    let got = a2.estimate();
    assert!(got <= a_truth && got as f64 >= (1.0 - 1.5 * eps) * a_truth as f64 - 1.0);
}
