//! The chaos contract of the self-healing engine.
//!
//! Three guarantees, checked end to end:
//!
//! 1. **Exactness under recoverable faults.** For any seeded
//!    [`FaultPlan`] whose faults stay within the replay-log bounds
//!    (kills, send failures, stalls — every shard healable), the
//!    supervised engine's final merged state is **bit-identical**
//!    (same [`Snapshot`] frame digest) to a fault-free run's.
//! 2. **Determinism.** Two runs with the same stream and the same
//!    fault plan produce identical counters and identical event
//!    traces — fault injection is replayable, not merely survivable.
//! 3. **Honesty.** When healing is impossible the engine reports a
//!    reason-carrying [`EngineError::ShardDead`] (the harvested panic
//!    payload included) instead of a silently wrong answer.

use hindex::prelude::*;
use hindex_common::snapshot::Snapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sketch_proto(seed: u64) -> CashRegisterHIndex {
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.3).unwrap(),
        delta: Delta::new(0.2).unwrap(),
    };
    CashRegisterHIndex::new(params, &mut StdRng::seed_from_u64(seed))
}

fn stream(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|k| ((k * 13) % 170, 1 + k % 2)).collect()
}

fn config(shards: usize, observer: Option<Arc<EngineObserver>>) -> EngineConfig {
    let mut b = EngineConfig::builder().shards(shards).batch(16).queue_depth(2);
    if let Some(o) = observer {
        b = b.observer(o);
    }
    b.build().unwrap()
}

/// Reference digest: the same stream through a plain (unsupervised)
/// engine with identical geometry and seed.
fn clean_digest(shards: usize, seed: u64, updates: &[(u64, u64)]) -> u64 {
    let mut engine = ShardedEngine::new(config(shards, None), sketch_proto(seed));
    engine.ingest_batch(updates);
    engine.finish().unwrap().frame_digest()
}

/// One supervised run; returns the merged frame digest plus the
/// deterministic projection of its metrics (counters and full event
/// trace — everything except wall-clock latency).
fn chaotic_run(
    shards: usize,
    seed: u64,
    updates: &[(u64, u64)],
    plan: FaultPlan,
) -> (u64, Vec<u64>, Vec<Event>) {
    let observer = Arc::new(EngineObserver::new(shards));
    let mut engine = SupervisedEngine::with_faults(
        config(shards, Some(Arc::clone(&observer))),
        SupervisorConfig::default(),
        plan,
        sketch_proto(seed),
    )
    .unwrap();
    engine.ingest_batch(updates);
    let digest = engine.finish().expect("recoverable plan").frame_digest();
    let s = observer.snapshot();
    let counters = vec![
        s.items,
        s.flushes,
        s.shard_panics,
        s.restarts,
        s.replayed_batches,
        s.micro_checkpoints,
        s.replay_overflows,
        s.batches_lost,
        s.items_lost,
        s.faults_injected,
    ];
    (digest, counters, s.events)
}

#[test]
fn killing_every_shard_recovers_bit_identically() {
    let updates = stream(3_000);
    for shards in [1usize, 2, 4] {
        let plan = FaultPlan::kill_sweep(shards, 200, 400);
        assert!(plan.kills_every_shard(shards));
        let (digest, counters, _) = chaotic_run(shards, 11, &updates, plan);
        assert_eq!(
            digest,
            clean_digest(shards, 11, &updates),
            "{shards} shards: healed state diverged from the fault-free run"
        );
        let restarts = counters[3];
        assert!(restarts >= shards as u64, "every shard must restart: {counters:?}");
        assert_eq!(counters[8], 0, "no items may be lost on a recoverable plan");
    }
}

/// Kill + heal under a live read plane: a marker held by a killed
/// worker dies with it, leaving that epoch incomplete — the aggregator
/// discards it rather than publishing a view missing the dead shard's
/// updates. So every view any reader can observe, during a kill sweep
/// over every shard, is still an exact serial prefix of the stream.
#[test]
fn kill_and_heal_never_publishes_a_non_healed_view() {
    use hindex::baseline::CashTable;
    use std::sync::atomic::{AtomicBool, Ordering};

    let updates = stream(3_000);
    // Serial single-threaded reference at every prefix.
    let prefixes: Arc<Vec<u64>> = Arc::new({
        let mut table = CashTable::new();
        let mut out = vec![table.frame_digest()];
        for &(p, d) in &updates {
            table.ingest(p, d);
            out.push(table.frame_digest());
        }
        out
    });
    let shards = 3usize;
    let cfg = EngineConfig::builder()
        .shards(shards)
        .batch(16)
        .queue_depth(2)
        .publish_interval(128)
        .build()
        .unwrap();
    let plan = FaultPlan::kill_sweep(shards, 200, 400);
    assert!(plan.kills_every_shard(shards));
    let mut engine =
        SupervisedEngine::with_faults(cfg, SupervisorConfig::default(), plan, CashTable::new())
            .unwrap();
    let handle = engine.read_handle().expect("publish_interval set");
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (h, s, prefixes) = (handle.clone(), Arc::clone(&stop), Arc::clone(&prefixes));
        std::thread::spawn(move || {
            let (mut observed, mut last_epoch) = (0u64, 0u64);
            while !s.load(Ordering::Relaxed) {
                if let Some(view) = h.query() {
                    assert!(view.epoch() >= last_epoch, "epoch regressed");
                    last_epoch = view.epoch();
                    assert_eq!(
                        view.estimator().frame_digest(),
                        prefixes[view.offset() as usize],
                        "published a torn or non-healed view at offset {}",
                        view.offset()
                    );
                    observed += 1;
                }
                std::thread::yield_now();
            }
            observed
        })
    };
    engine.ingest_batch(&updates);
    let epoch = engine.publish_now().expect("all shards healable");
    assert!(handle.wait_for_epoch(epoch, 10_000), "post-heal publish never completed");
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0, "reader never saw a view");
    let view = handle.query().unwrap();
    assert_eq!(view.offset(), updates.len() as u64);
    assert_eq!(view.estimator().frame_digest(), *prefixes.last().unwrap());
    assert_eq!(engine.finish().unwrap().frame_digest(), *prefixes.last().unwrap());
}

#[test]
fn seeded_random_plans_are_replayable() {
    let updates = stream(2_000);
    let plan_a = FaultPlan::random(6, 3, updates.len() as u64, 99);
    let plan_b = FaultPlan::random(6, 3, updates.len() as u64, 99);
    assert_eq!(format!("{plan_a:?}"), format!("{plan_b:?}"), "same seed, same plan");
    assert_ne!(
        format!("{plan_a:?}"),
        format!("{:?}", FaultPlan::random(6, 3, updates.len() as u64, 100)),
        "different seed, different plan"
    );
}

// Regression: `join_workers` used to discard panic payloads
// (`h.join().ok()`), so a dead shard reported only its index. The
// harvested payload must now travel through `EngineError::ShardDead`'s
// Display.
#[test]
fn terminal_shard_error_carries_the_panic_payload() {
    let updates = stream(1_000);
    let sup = SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() };
    let plan = FaultPlan::parse("kill@100:0", 2, 1_000).unwrap();
    let mut engine =
        SupervisedEngine::with_faults(config(2, None), sup, plan, sketch_proto(1)).unwrap();
    engine.ingest_batch(&updates);
    let err = engine.finish().unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, EngineError::ShardDead { shard: 0, .. }), "{msg}");
    assert!(msg.contains("injected fault: kill shard 0"), "payload missing: {msg}");
    assert!(msg.contains("restart budget exhausted"), "ladder rung missing: {msg}");
}

#[test]
fn fault_plan_parser_round_trips_the_grammar() {
    let plan = FaultPlan::parse("kill@5:0, fail@9:1=3, stall@2:2=7, corrupt@4:0", 3, 100).unwrap();
    assert_eq!(plan.faults.len(), 4);
    assert!(FaultPlan::parse("kill@5:9", 3, 100).is_err(), "shard out of range");
    assert!(FaultPlan::parse("fail@5:0=0", 3, 100).is_err(), "zero send failures");
    assert!(FaultPlan::parse("nonsense", 3, 100).is_err());
    let seeded = FaultPlan::parse("rand=4@77", 3, 100).unwrap();
    assert_eq!(seeded.seed, Some(77));
    assert_eq!(seeded.faults.len(), 4);
}

/// Builds a comma-separated fault spec from proptest-generated
/// primitives: kinds 0/1/2 → kill/fail/stall (corrupt is excluded —
/// it can legitimately end in honest degradation, not recovery).
fn spec_from(parts: &[(u8, u64, u8, u64)], shards: usize, horizon: u64) -> String {
    parts
        .iter()
        .map(|&(kind, tick, shard, arg)| {
            let tick = tick % horizon;
            let shard = u64::from(shard) % shards as u64;
            match kind % 3 {
                0 => format!("kill@{tick}:{shard}"),
                1 => format!("fail@{tick}:{shard}={}", 1 + arg % 3),
                _ => format!("stall@{tick}:{shard}={}", arg % 4),
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// For ANY in-bounds fault plan: the healed engine's final state is
    /// bit-identical to a fault-free run's, and running the identical
    /// seeded chaos twice yields identical metrics and event traces.
    #[test]
    fn any_recoverable_fault_plan_preserves_the_digest(
        parts in proptest::collection::vec(
            (0u8..3, 0u64..1500, 0u8..3, 0u64..8),
            1..6,
        ),
        seed in 0u64..16,
    ) {
        let updates = stream(1_500);
        let shards = 3usize;
        let spec = spec_from(&parts, shards, updates.len() as u64);
        let plan = FaultPlan::parse(&spec, shards, updates.len() as u64).unwrap();
        let (da, ca, ta) = chaotic_run(shards, seed, &updates, plan.clone());
        proptest::prop_assert_eq!(
            da,
            clean_digest(shards, seed, &updates),
            "plan {} diverged from the fault-free run", spec
        );
        let plan = FaultPlan::parse(&spec, shards, updates.len() as u64).unwrap();
        let (db, cb, tb) = chaotic_run(shards, seed, &updates, plan);
        proptest::prop_assert_eq!(da, db);
        proptest::prop_assert_eq!(ca, cb, "counters diverged for plan {}", spec);
        proptest::prop_assert_eq!(ta, tb, "event traces diverged for plan {}", spec);
    }
}
