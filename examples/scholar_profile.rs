//! Scholar-profile scenario: a bibliometrics service streams a large
//! author's per-paper citation totals (think a Google-Scholar-scale
//! crawl) and wants the H-index without buffering the whole profile.
//!
//! Compares every aggregate-model algorithm in the paper on the same
//! heavy-tailed corpus, under both adversarial and random order, and
//! prints the accuracy/space trade-off.
//!
//! ```sh
//! cargo run --release --example scholar_profile
//! ```

use hindex::prelude::*;
use hindex_baseline::FullStore;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A prolific "author": 200k papers, Zipf(2.0) citations — the
    // empirical shape of real citation data.
    let corpus = CorpusGenerator {
        n_authors: 1,
        productivity: ProductivityDist::Constant(200_000),
        citations: CitationDist::Zipf { exponent: 2.0, max: 1_000_000 },
        max_coauthors: 1,
        seed: 42,
    }
    .generate();
    let mut values = corpus.citation_counts();
    let truth = h_index(&values);
    let n = values.len();
    println!("papers: {n}, exact H-index: {truth}\n");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "algorithm", "estimate", "rel. error", "words"
    );

    let eps = Epsilon::new(0.1).unwrap();
    let delta = Delta::new(0.05).unwrap();

    let report = |name: &str, estimate: u64, words: usize| {
        let rel = if truth == 0 {
            0.0
        } else {
            (truth as f64 - estimate as f64).abs() / truth as f64
        };
        println!("{name:<28} {estimate:>10} {rel:>11.4} {words:>10}");
    };

    // Store-everything strawman.
    let mut full = FullStore::new();
    full.extend_from(values.iter().copied());
    report("store-everything", full.estimate(), full.space_words());

    // Exact online heap (space grows with h*).
    let mut heap = IncrementalHIndex::new();
    for &v in &values {
        heap.insert(v);
    }
    report("exact heap (online)", heap.h_index(), heap.space_words());

    // Algorithm 1 — adversarial order safe, O(ε⁻¹ log n) words.
    let mut hist = ExponentialHistogram::new(eps);
    hist.extend_from(values.iter().copied());
    report("Alg 1 exp. histogram", hist.estimate(), hist.space_words());

    // Algorithm 2 — adversarial order safe, O(ε⁻¹ log ε⁻¹) words.
    let mut window = ShiftingWindow::new(eps);
    window.extend_from(values.iter().copied());
    report("Alg 2 shifting window", window.estimate(), window.space_words());

    // Algorithm 3/4 — needs random order; shuffle first.
    let mut rng = StdRng::seed_from_u64(7);
    StreamOrder::Random.apply(&mut values, &mut rng);
    let params = RandomOrderParams::new(eps, delta, n as u64);
    let mut random = RandomOrderEstimator::new(params);
    random.extend_from(values.iter().copied());
    report(
        "Alg 3/4 random order",
        random.estimate(),
        random.space_words(),
    );

    println!(
        "\n(β in effect for Alg 3/4: {}; its six-word branch engages once h* ≥ β/ε)",
        random.beta()
    );
}
