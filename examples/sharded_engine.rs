//! Sharded-engine scenario: parallel ingestion of a citation firehose.
//!
//! The estimators are tiny; the stream is the bottleneck. The engine
//! partitions a cash-register stream by paper across worker threads,
//! each owning a clone of one seeded estimator, and answers queries —
//! at any time — by merging the shard states. Because every sketch in
//! Algorithm 6 is linear, the merged estimate is identical to what a
//! single estimator would have produced on the whole stream.
//!
//! ```sh
//! cargo run --release --example sharded_engine
//! ```

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A corpus of 2 000 papers with Zipf citation totals, delivered as
    // a shuffled stream of small update events.
    let corpus = CorpusGenerator {
        n_authors: 1,
        productivity: ProductivityDist::Constant(2_000),
        citations: CitationDist::Zipf { exponent: 1.7, max: 20_000 },
        max_coauthors: 1,
        seed: 5,
    }
    .generate();
    let mut rng = StdRng::seed_from_u64(42);
    let events = Unaggregator { max_batch: 3, shuffle: true }.stream(&corpus, &mut rng);
    let updates: Vec<(u64, u64)> = events.iter().map(|u| (u.paper.0, u.delta)).collect();
    println!("papers: {}, update events: {}", corpus.len(), updates.len());

    // One seeded prototype; the engine clones it per shard, so the
    // shards share randomness and merge exactly.
    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.2).unwrap(),
        delta: Delta::new(0.1).unwrap(),
    };
    let prototype = params.build(&mut StdRng::seed_from_u64(7));

    // Serial reference: one estimator consuming events one at a time,
    // the way they arrive.
    let mut serial = prototype.clone();
    let start = Instant::now();
    for &(p, z) in &updates {
        serial.ingest(p, z);
    }
    let serial_time = start.elapsed();

    // Sharded: four workers behind bounded channels.
    let mut engine = ShardedEngine::new(EngineConfig::with_shards(4), prototype);
    let start = Instant::now();
    engine.ingest_batch(&updates);

    // Anytime query: ingestion keeps running afterwards.
    let snapshot = engine.query().unwrap();
    println!("anytime estimate : {}", snapshot.estimate());

    let merged = engine.finish().unwrap();
    let engine_time = start.elapsed();

    // Exact truth via the sharded exact baseline.
    let mut exact_engine = ShardedEngine::new(EngineConfig::with_shards(4), CashTable::new());
    exact_engine.ingest_batch(&updates);
    let exact = exact_engine.finish().unwrap();

    println!("exact h-index    : {}", exact.estimate());
    println!("serial estimate  : {} ({serial_time:.2?})", serial.estimate());
    println!("sharded estimate : {} ({engine_time:.2?})", merged.estimate());
    println!("sketch space     : {} words", merged.space_words());
    assert_eq!(
        serial.estimate(),
        merged.estimate(),
        "linear sketches: sharded merge must equal serial ingestion"
    );
}
