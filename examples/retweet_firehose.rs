//! Retweet-firehose scenario: the cash-register model.
//!
//! Tweets (papers) gain retweets (citations) one at a time, interleaved
//! across millions of events — nobody hands you finished totals. The
//! paper's Algorithm 5/6 estimates the account's H-index from the raw
//! event stream with a bank of ℓ₀-samplers, no per-tweet counters.
//!
//! ```sh
//! cargo run --release --example retweet_firehose
//! ```

use hindex::prelude::*;
use hindex_baseline::CashTable;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // One account's 3 000 tweets with Zipf(1.8) retweet totals…
    let corpus = CorpusGenerator {
        n_authors: 1,
        productivity: ProductivityDist::Constant(3_000),
        citations: CitationDist::Zipf { exponent: 1.8, max: 50_000 },
        max_coauthors: 1,
        seed: 11,
    }
    .generate();

    // …delivered as a shuffled stream of unit retweet events.
    let mut rng = StdRng::seed_from_u64(99);
    let events = Unaggregator { max_batch: 1, shuffle: true }.stream(&corpus, &mut rng);
    println!("tweets: {}, retweet events: {}", corpus.len(), events.len());

    let params = CashRegisterParams::Additive {
        epsilon: Epsilon::new(0.15).unwrap(),
        delta: Delta::new(0.05).unwrap(),
    };
    let mut sketch = CashRegisterHIndex::new(params, &mut rng);
    let mut exact = CashTable::new();

    // Process the firehose, reporting as it streams.
    let checkpoints = [events.len() / 4, events.len() / 2, events.len()];
    let mut next_cp = 0;
    for (i, ev) in events.iter().enumerate() {
        sketch.ingest(ev.paper.0, ev.delta);
        exact.ingest(ev.paper.0, ev.delta);
        if next_cp < checkpoints.len() && i + 1 == checkpoints[next_cp] {
            println!(
                "after {:>8} events: exact h = {:>3}, sketch h = {:>3} (D = {} tweets retweeted)",
                i + 1,
                exact.estimate(),
                sketch.estimate(),
                exact.distinct(),
            );
            next_cp += 1;
        }
    }

    println!(
        "\nsketch: {} ℓ₀-samplers, {} words | exact table: {} words",
        sketch.num_samplers(),
        sketch.space_words(),
        exact.space_words(),
    );
    println!(
        "additive guarantee: |ĥ − h*| ≤ ε·D = {:.0} with prob ≥ 0.95",
        0.15 * exact.distinct() as f64
    );
}
