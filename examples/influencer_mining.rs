//! Influencer-mining scenario: §4 of the paper.
//!
//! A platform streams papers/posts from *many* authors and wants the
//! users whose H-index is an ε fraction of the total H-impact — without
//! a per-author table. Algorithm 8 hashes authors into buckets, runs
//! the 1-heavy-hitter detector (Algorithm 7) per bucket, and decodes.
//!
//! The example also shows why classical heavy hitters are not enough:
//! ranking authors by *total citations* (CountMin) surfaces one-hit
//! wonders, not high-H-index authors.
//!
//! ```sh
//! cargo run --release --example influencer_mining
//! ```

use hindex::prelude::*;
use hindex_baseline::AuthorTable;
use hindex_common::SpaceUsage;
use hindex_sketch::CountMin;
use hindex_stream::generator::planted_heavy_hitters;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Three planted influencers (h = 70, 55, 45) in a sea of 100 light
    // authors, plus one "one-hit wonder" author: a single paper with a
    // giant citation count but h = 1.
    let mut corpus = planted_heavy_hitters(&[70, 55, 45], 100, 5, 3, 2024);
    let one_hit_author = 200u64;
    let next_id = corpus.len() as u64;
    corpus.push(hindex_stream::Paper::solo(next_id, one_hit_author, 1_000_000));

    let truth = corpus.ground_truth();
    let eps = 0.1;
    println!(
        "authors: {}, papers: {}, total H-impact: {}",
        truth.per_author.len(),
        corpus.len(),
        truth.total_h_impact
    );
    println!("ground-truth ε-heavy authors (ε = {eps}):");
    for (a, h) in truth.heavy_hitters(eps) {
        println!("  {a}: h = {h}");
    }

    // --- The paper's sketch ---
    let mut rng = StdRng::seed_from_u64(1);
    let params = HeavyHittersParams::new(
        Epsilon::new(eps).unwrap(),
        Delta::new(0.05).unwrap(),
    );
    let mut hh = HeavyHitters::new(params, &mut rng);
    for p in corpus.papers() {
        hh.push(p);
    }
    println!("\nAlgorithm 8 candidates ({} words):", hh.space_words());
    for c in hh.decode() {
        println!(
            "  {}: ĥ = {} (certified in {} rows)",
            c.author, c.h_estimate, c.rows_found
        );
    }

    // --- Exact baseline for comparison ---
    let mut table = AuthorTable::new();
    for p in corpus.papers() {
        table.ingest(p);
    }
    println!(
        "\nexact per-author table would use {} words for {} authors",
        table.space_words(),
        table.num_authors()
    );

    // --- Why citation-count heavy hitters are the wrong tool ---
    let mut cm = CountMin::for_guarantee(0.01, 0.05, &mut rng);
    for p in corpus.papers() {
        for a in &p.authors {
            cm.add(a.0, p.citations);
        }
    }
    let mut by_volume: Vec<(u64, u64)> = truth
        .per_author
        .keys()
        .map(|a| (a.0, cm.query(a.0)))
        .collect();
    by_volume.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
    println!("\ntop-3 authors by CountMin citation volume:");
    for &(a, v) in by_volume.iter().take(3) {
        let h = truth.per_author[&AuthorId(a)];
        println!("  a{a}: ≈{v} citations, but h = {h}");
    }
    println!("→ the one-hit wonder tops the volume ranking; Algorithm 8 ignores it.");
}
