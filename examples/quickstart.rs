//! Quickstart: estimate a user's H-index from a stream of per-paper
//! citation counts in sublinear space.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hindex::prelude::*;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;

fn main() {
    // The aggregate stream: one finished citation total per paper, in
    // arbitrary order (say, a scholar's profile being crawled).
    let citations: Vec<u64> = vec![
        312, 4, 18, 92, 41, 7, 0, 55, 23, 11, 3, 67, 150, 2, 29, 9, 88, 36, 1, 44, 16, 5, 73, 20,
        12, 31, 8, 203, 48, 27,
    ];

    // Ground truth, the offline way (Definition 1 of the paper).
    let truth = h_index(&citations);

    // Streaming, the paper's way: Algorithm 2 ("shifting window"),
    // deterministic (1−ε)-approximation in O(ε⁻¹ log ε⁻¹) words.
    let eps = Epsilon::new(0.1).expect("valid epsilon");
    let mut sketch = ShiftingWindow::new(eps);
    for &c in &citations {
        sketch.ingest(c);
    }

    let estimate = sketch.estimate();
    println!("papers            : {}", citations.len());
    println!("exact H-index     : {truth}");
    println!("streaming estimate: {estimate}   (guaranteed within 10% below)");
    println!("sketch space      : {} words", sketch.space_words());
    println!(
        "exact online space: {} words (heap baseline)",
        {
            let mut exact = IncrementalHIndex::new();
            for &c in &citations {
                exact.insert(c);
            }
            exact.space_words()
        }
    );

    println!(
        "(at this tiny scale the exact heap is smaller — the sketch wins once\n h* grows past ε⁻¹ log ε⁻¹; see the scholar_profile example)"
    );

    assert!(estimate <= truth);
    assert!(estimate as f64 >= 0.9 * truth as f64);
}
