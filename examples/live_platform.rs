//! Live-platform scenario: the extensions working together.
//!
//! A content platform wants, per creator and in real time:
//!
//! 1. *current* impact — the H-index of their most recent posts only
//!    ([`SlidingHIndex`]), so stale hits age out;
//! 2. impact under *retractions* — unlikes and deleted reactions
//!    ([`TurnstileHIndex`]), where the estimate can go down;
//! 3. a watchlist of named creators tracked cheaply over the shared
//!    firehose ([`TrackedAuthorsAggregate`]).
//!
//! ```sh
//! cargo run --release --example live_platform
//! ```

use hindex::prelude::*;
use hindex_common::SpaceUsage;
use hindex_common::Estimate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // ---------- 1. Recency: sliding-window H-index ----------
    println!("== sliding window: a creator whose hot streak ends ==");
    let window = 500u64;
    let mut sliding = SlidingHIndex::new(Epsilon::new(0.15).unwrap(), window, 0.05);
    // 1 000 strong posts, then 1 000 duds.
    for i in 0..2_000u64 {
        let reactions = if i < 1_000 {
            rng.random_range(100..2_000)
        } else {
            rng.random_range(0..5)
        };
        sliding.ingest(reactions);
        if i % 400 == 399 {
            println!(
                "  after {:>4} posts: windowed h ≈ {:>3}  ({} words)",
                i + 1,
                sliding.estimate(),
                sliding.space_words()
            );
        }
    }
    println!("  → the windowed index collapses once the streak leaves the last {window} posts\n");

    // ---------- 2. Retractions: turnstile H-index ----------
    println!("== turnstile: a scandal triggers mass unlikes ==");
    let mut turnstile = TurnstileHIndex::new(
        Epsilon::new(0.25).unwrap(),
        Delta::new(0.1).unwrap(),
        &mut rng,
    );
    for post in 0..60u64 {
        turnstile.update(post, 80); // 60 posts × 80 reactions: h = 60
    }
    println!("  before: h ≈ {}", turnstile.estimate());
    for post in 0..40u64 {
        turnstile.update(post, -80); // 40 posts fully unliked
    }
    println!("  after mass retraction: h ≈ {} (truth: 20)", turnstile.estimate());
    println!("  → no cash-register algorithm can report a decrease; the turnstile sketch does\n");

    // ---------- 3. Watchlist: tracked authors ----------
    println!("== watchlist: three named creators over the shared firehose ==");
    let watch = [AuthorId(11), AuthorId(22), AuthorId(33)];
    let mut tracked = TrackedAuthorsAggregate::new(&watch, Epsilon::new(0.1).unwrap());
    // Firehose: 5 000 posts from 100 creators; the watched three have
    // planted profiles.
    let corpus = hindex_stream::generator::planted_heavy_hitters(&[45, 30, 15], 97, 5, 4, 9);
    for p in corpus.papers() {
        // Remap planted authors 0/1/2 onto the watchlist ids.
        let mapped: Vec<u64> = p
            .authors
            .iter()
            .map(|a| match a.0 {
                0 => 11,
                1 => 22,
                2 => 33,
                other => other + 100,
            })
            .collect();
        tracked.push(&Paper::with_authors(p.id.0, &mapped, p.citations));
    }
    for (author, h) in tracked.leaderboard() {
        println!("  {author}: h ≈ {h}");
    }
    println!(
        "  → {} words total for the watchlist ({} per creator)",
        tracked.space_words(),
        tracked.space_words() / watch.len()
    );
}
